"""Controller interface of the event-driven simulator.

Event-driven DPM policies are *idle-period* policies: each time the device
drains its queue the policy issues one :class:`IdleDecision` — which rest
state to fall back to and after how long a timeout.  Arrivals always wake
the device (service is never optional); the policy is re-consulted at the
next idle start.  After each idle period the policy receives the realized
idle length, which is the learning signal for the adaptive and predictive
baselines.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device import PowerStateMachine

#: Timeout value meaning "never go down during this idle period".
NEVER = math.inf


@dataclass(frozen=True)
class IdleDecision:
    """What to do for the idle period that just began.

    Attributes
    ----------
    target_state:
        Rest state to enter if the idle period survives the timeout;
        None means stay in the wait state regardless.
    timeout:
        Seconds to linger in the wait state before moving; 0 moves
        immediately, :data:`NEVER` (or ``target_state=None``) never moves.
    """

    target_state: Optional[str]
    timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")


@dataclass(frozen=True)
class IdleContext:
    """Information handed to the policy at idle start."""

    now: float                     #: current simulation time
    device: PowerStateMachine      #: the controlled device model
    wait_state: str                #: state the device idles in by default
    next_arrival: Optional[float]  #: oracle peek; None for causal policies


@dataclass(frozen=True)
class BatchIdleContext:
    """All idle periods of one run, handed to a policy at once.

    The vectorized event kernel (:mod:`repro.runtime.eventsim`) extracts
    every idle gap of a trace up front and asks the policy for all its
    decisions in one call instead of one :meth:`EventPolicy.on_idle`
    round-trip per gap.

    Attributes
    ----------
    gap_starts:
        Idle-start times, one per gap, in chronological order (the last
        entry is the trailing gap after the final service completion).
    next_arrivals:
        Arrival time ending each gap; ``nan`` where the policy must stay
        causal (simulator not in oracle mode) and for the trailing gap
        (no further arrivals) — exactly the gaps whose scalar
        :class:`IdleContext` would carry ``next_arrival=None``.
    device, wait_state:
        As in :class:`IdleContext`.
    """

    gap_starts: np.ndarray
    next_arrivals: np.ndarray
    device: PowerStateMachine
    wait_state: str


@dataclass(frozen=True)
class BatchIdleDecision:
    """Per-gap decisions answering a :class:`BatchIdleContext`.

    ``target_idx[i]`` indexes ``device.state_names`` (-1 means "stay in
    the wait state", i.e. a scalar ``target_state=None``); ``timeouts[i]``
    mirrors :attr:`IdleDecision.timeout` (0 = move immediately,
    :data:`NEVER` = never).
    """

    target_idx: np.ndarray
    timeouts: np.ndarray


@dataclass(frozen=True)
class StepBatchContext:
    """One idle gap *per replica*, handed to a stateful policy in lock-step.

    The lock-step batched engine (:func:`~repro.runtime.eventsim.
    run_step_batched`) advances R independent replication runs one idle
    gap per step.  Where :class:`BatchIdleContext` lays out all gaps of
    *one* run, this context lays out the *current* gap of R runs — the
    axis along which stateful policies (whose decisions depend on the
    realized idle history) can still vectorize, because the replicas
    never interact.

    Attributes
    ----------
    gap_starts:
        Idle-start time of the gap opening now, one entry per replica.
    next_arrivals:
        Arrival time ending each replica's gap; ``nan`` where the policy
        must stay causal (non-oracle runs) and for trailing gaps.
    active:
        Boolean mask of replicas that actually have a gap this step;
        entries where it is False carry stale values and the returned
        decisions for them are ignored.
    device, wait_state:
        As in :class:`IdleContext` (replicas share one device model).
    """

    gap_starts: np.ndarray
    next_arrivals: np.ndarray
    active: np.ndarray
    device: PowerStateMachine
    wait_state: str


class EventPolicy(ABC):
    """Idle-period power-management policy."""

    #: short name used in report tables
    name: str = "policy"

    def reset(self) -> None:
        """Clear learned state before a fresh simulation run."""

    @abstractmethod
    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        """Decide the rest state and timeout for the idle period starting now."""

    def on_idle_end(self, idle_length: float) -> None:
        """Feedback: the idle period that just ended lasted ``idle_length``."""

    def decide_batch(self, ctx: BatchIdleContext) -> Optional[BatchIdleDecision]:
        """Vectorized decisions for every idle gap of a run, or None.

        Opt-in fast-path hook: a policy may implement this only when it
        is *stateless* — :meth:`on_idle` a pure function of the
        :class:`IdleContext` and :meth:`on_idle_end` a no-op — and the
        returned decisions must match what per-gap :meth:`on_idle` calls
        would produce.  Returning None (the default) keeps the policy on
        the scalar event loop.
        """
        return None

    # -- lock-step cross-replication hooks (stateful-batchable policies) --- #

    def make_step_state(
        self, n: int, device: PowerStateMachine, wait_state: str
    ) -> Optional[object]:
        """Fresh dense per-replica state for ``n`` lock-step replicas.

        Opt-in hook for *stateful* policies whose decision and feedback
        rules vectorize across independent replications: return an
        object holding the policy's learned state as ``(n,)`` arrays —
        the batched equivalent of ``n`` :meth:`reset` instances.  The
        engine threads it through :meth:`decide_step_batch` and
        :meth:`end_step_batch`; it must be fully external to ``self``
        so an abandoned batched run never contaminates the instance the
        scalar fallback then uses.  Returning None (the default) means
        the policy does not support lock-step batching.
        """
        return None

    def decide_step_batch(
        self, states: object, ctx: StepBatchContext
    ) -> Optional[BatchIdleDecision]:
        """Decisions for the idle gap opening now in every replica.

        Called once per lock-step round with the state object from
        :meth:`make_step_state`; entry ``i`` of the returned arrays must
        equal what :meth:`on_idle` would decide for replica ``i`` given
        its realized idle history.  Only consulted when
        :meth:`make_step_state` returned non-None.
        """
        raise NotImplementedError

    def end_step_batch(
        self, states: object, idle_lengths: np.ndarray, active: np.ndarray
    ) -> None:
        """Batched :meth:`on_idle_end`: the gaps that just closed.

        Must update ``states`` exactly as ``n`` scalar
        :meth:`on_idle_end` calls would, for replicas where ``active``
        is True; entries where it is False carry stale values and must
        be left untouched.
        """
        raise NotImplementedError
