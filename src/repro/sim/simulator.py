"""Event-driven continuous-time DPM simulator.

Simulates one power-managed device serving a FIFO request stream under an
idle-period policy (:mod:`repro.sim.policy_api`).  This is the realistic
substrate of the repository — transition latencies, wake-on-arrival,
break-even accounting — used by the cross-policy comparison experiment
(EXT-POLICY) and the device examples, complementing the slotted DTMDP
used for the exact-optimality figures.

Semantics
---------
- Requests are served one at a time, in the device's *home* (initial,
  servicing) state, each taking its trace demand or ``service_time``.
- When the queue drains, the device parks in ``wait_state`` (default: the
  cheapest state with a free round trip to home, typically "idle") and
  the policy's :meth:`~repro.sim.policy_api.EventPolicy.on_idle` decides
  whether/when to fall to a deeper state.
- Arrivals always trigger a wake-up.  A down transition in flight cannot
  be preempted: the device completes it, then immediately transitions up
  (the standard non-preemptable assumption).
- Energy = state residency x power + transition energies; transitions
  with latency integrate at their mean power.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

import numpy as np

from ..device import PowerStateMachine
from ..workload.trace import Trace
from .events import ARRIVAL, SERVICE_DONE, TIMEOUT, TRANSITION_DONE, Event, EventQueue
from .policy_api import NEVER, EventPolicy, IdleContext, IdleDecision
from .stats import EnergyMeter, IdleTracker, LatencyTracker, SimReport, compile_report


def resolve_demands(trace: Trace, service_time: float) -> np.ndarray:
    """Per-request service demands with the simulator's default rule.

    A trace without demands (or with non-positive entries) falls back to
    ``service_time``.  Shared by the scalar event loop and the vectorized
    kernel so both paths serve identical workloads.
    """
    demands = trace.service_demands
    if demands is None:
        return np.full(len(trace), float(service_time))
    demands = demands.astype(float)
    return np.where(demands > 0, demands, float(service_time))


def default_wait_state(device: PowerStateMachine) -> str:
    """Cheapest state with a free, instant round trip to the home state."""
    home = device.initial_state
    best = home
    best_power = device.state(home).power
    for name in device.state_names:
        if name == home:
            continue
        if not (device.can_transition(home, name) and device.can_transition(name, home)):
            continue
        down = device.transition(home, name)
        up = device.transition(name, home)
        if down.energy == 0 and up.energy == 0 and down.latency == 0 and up.latency == 0:
            power = device.state(name).power
            if power < best_power:
                best = name
                best_power = power
    return best


@dataclass
class _Request:
    arrival: float
    demand: float


class DPMSimulator:
    """One device + one trace + one policy -> a :class:`SimReport`.

    Parameters
    ----------
    device:
        Power model; its ``initial_state`` is the serving (home) state.
    policy:
        Idle-period policy under test.
    service_time:
        Default per-request service demand, used when the trace carries
        no demands.
    wait_state:
        Where the device lingers before a (possible) shutdown; defaults
        to :func:`default_wait_state`.
    oracle:
        If True the policy is shown the true next arrival time in its
        :class:`~repro.sim.policy_api.IdleContext` (for oracle baselines).
    keep_latencies:
        If False the report drops the raw per-request latency array
        after the summary percentiles are computed (sweep workers use
        this to keep pickled results small).
    """

    def __init__(
        self,
        device: PowerStateMachine,
        policy: EventPolicy,
        service_time: float = 0.5,
        wait_state: Optional[str] = None,
        oracle: bool = False,
        keep_latencies: bool = True,
    ) -> None:
        if service_time <= 0:
            raise ValueError(f"service_time must be > 0, got {service_time}")
        self.device = device
        self.policy = policy
        self.service_time = float(service_time)
        self.home = device.initial_state
        self.wait_state = wait_state if wait_state is not None else default_wait_state(device)
        device.state(self.wait_state)  # existence check
        self.oracle = oracle
        self.keep_latencies = keep_latencies

    # ------------------------------------------------------------------ #

    def run(self, trace: Trace) -> SimReport:
        """Simulate the full trace; returns the final report."""
        self.policy.reset()
        queue: Deque[_Request] = deque()
        events = EventQueue()
        meter = EnergyMeter()
        latency = LatencyTracker()
        idle_stats = IdleTracker()

        arrivals = trace.arrival_times
        demands = resolve_demands(trace, self.service_time)
        for i, t in enumerate(arrivals):
            events.push(Event(float(t), ARRIVAL, _Request(float(t), float(demands[i]))))

        # --- device condition -------------------------------------------------
        state = self.home               # steady state name when not in flight
        in_flight: Optional[Tuple[str, str]] = None  # (source, target)
        wake_pending = False
        serving: Optional[_Request] = None
        idle_since: Optional[float] = None   # time the current idle period began
        timeout_ticket: Optional[int] = None
        pending_target: Optional[str] = None  # decision target awaiting timeout

        meter.set_condition(0.0, self.device.state(state).power, state)

        def begin_transition(now: float, source: str, target: str) -> None:
            nonlocal state, in_flight
            tr = self.device.transition(source, target)
            if tr.latency == 0:
                meter.add_lump(tr.energy)
                state = target
                in_flight = None
                meter.set_condition(now, self.device.state(target).power, target)
                on_transition_done(now, source, target, instant=True)
            else:
                in_flight = (source, target)
                meter.set_condition(
                    now, tr.mean_power, f"{source}->{target}"
                )
                events.push(Event(now + tr.latency, TRANSITION_DONE, (source, target)))

        def start_service(now: float) -> None:
            nonlocal serving
            serving = queue.popleft()
            events.push(Event(now + serving.demand, SERVICE_DONE, serving))

        def end_idle(now: float) -> None:
            """Close the idle period (an arrival ended it)."""
            nonlocal idle_since, timeout_ticket
            if idle_since is None:
                return
            length = now - idle_since
            idle_stats.record_idle(length)
            self.policy.on_idle_end(length)
            idle_since = None
            if timeout_ticket is not None:
                events.cancel(timeout_ticket)
                timeout_ticket = None

        def on_transition_done(
            now: float, source: str, target: str, instant: bool = False
        ) -> None:
            nonlocal state, in_flight, wake_pending
            state = target
            in_flight = None
            if not instant:
                meter.set_condition(now, self.device.state(target).power, target)
            if (wake_pending or queue) and target != self.home:
                wake_pending = False
                begin_transition(now, target, self.home)
            elif target == self.home and queue and serving is None:
                wake_pending = False
                start_service(now)

        def begin_idle(now: float) -> None:
            """Queue drained: park, consult the policy, arm the timeout."""
            nonlocal idle_since, timeout_ticket, pending_target
            idle_since = now
            if state != self.wait_state and self.wait_state != self.home:
                begin_transition(now, state, self.wait_state)
            ctx = IdleContext(
                now=now,
                device=self.device,
                wait_state=self.wait_state,
                next_arrival=self._peek_next_arrival(events) if self.oracle else None,
            )
            decision = self.policy.on_idle(ctx)
            pending_target = None
            if decision.target_state is None or math.isinf(decision.timeout):
                return
            if not self.device.has_state(decision.target_state):
                raise KeyError(
                    f"policy chose unknown state {decision.target_state!r}"
                )
            if decision.timeout == 0:
                self._note_shutdown(idle_stats, events, now, decision.target_state)
                begin_transition(now, state, decision.target_state)
            else:
                pending_target = decision.target_state
                timeout_ticket = events.push(
                    Event(now + decision.timeout, TIMEOUT, decision.target_state)
                )

        # --- main loop --------------------------------------------------------
        begin_idle(0.0)
        now = 0.0
        while True:
            event = events.pop()
            if event is None:
                break
            if event.kind == TIMEOUT and event.time >= trace.duration:
                # the observation window ended before this timeout fired;
                # the would-be shutdown is outside the experiment
                continue
            now = event.time
            if event.kind == ARRIVAL:
                req: _Request = event.payload
                queue.append(req)
                end_idle(now)
                if serving is None and in_flight is None:
                    if state == self.home:
                        start_service(now)
                    else:
                        begin_transition(now, state, self.home)
                elif in_flight is not None and in_flight[1] != self.home:
                    wake_pending = True
            elif event.kind == SERVICE_DONE:
                req = event.payload
                latency.record(req.arrival, now)
                serving = None
                if queue:
                    start_service(now)
                else:
                    begin_idle(now)
            elif event.kind == TRANSITION_DONE:
                source, target = event.payload
                on_transition_done(now, source, target)
            elif event.kind == TIMEOUT:
                timeout_ticket = None
                if idle_since is not None and in_flight is None and serving is None:
                    target = event.payload
                    self._note_shutdown(idle_stats, events, now, target)
                    begin_transition(now, state, target)

        # close the final idle period at the trace end
        end_time = max(now, trace.duration)
        if idle_since is not None:
            idle_stats.record_idle(end_time - idle_since)
            self.policy.on_idle_end(end_time - idle_since)
        meter.finish(end_time)

        return compile_report(
            home_power=self.device.state(self.home).power,
            end_time=end_time,
            total_energy=meter.total_energy,
            latencies=latency.values,
            idle_lengths=idle_stats.idle_lengths,
            n_shutdowns=idle_stats.n_shutdowns,
            n_wrong_shutdowns=idle_stats.n_wrong_shutdowns,
            state_residency=meter.residency,
            keep_latencies=self.keep_latencies,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _peek_next_arrival(self, events: EventQueue) -> Optional[float]:
        """Earliest pending ARRIVAL time (oracle support)."""
        best = None
        for time_, _, ticket, event in events._heap:  # noqa: SLF001 - same module family
            if ticket in events._cancelled:
                continue
            if event.kind == ARRIVAL and (best is None or time_ < best):
                best = time_
        return best

    def _note_shutdown(
        self,
        idle_stats: IdleTracker,
        events: EventQueue,
        now: float,
        target: str,
    ) -> None:
        """Record the shutdown and judge it against the break-even time."""
        try:
            break_even = self.device.break_even_time(target, self.home)
        except (ValueError, KeyError):
            break_even = 0.0
        next_arrival = self._peek_next_arrival(events)
        remaining_idle = None if next_arrival is None else next_arrival - now
        idle_stats.record_shutdown(remaining_idle, break_even)
