"""Event types and the pending-event queue of the event-driven simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Event kinds, in tie-break priority order (lower fires first at equal time).
ARRIVAL = "arrival"
SERVICE_DONE = "service_done"
TRANSITION_DONE = "transition_done"
TIMEOUT = "timeout"


@dataclass(frozen=True)
class Event:
    """One scheduled simulator event."""

    time: float
    kind: str
    payload: Any = None


class EventQueue:
    """Min-heap of events with stable FIFO tie-breaking and cancellation."""

    _PRIORITY = {ARRIVAL: 0, SERVICE_DONE: 1, TRANSITION_DONE: 2, TIMEOUT: 3}

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    def push(self, event: Event) -> int:
        """Schedule an event; returns a ticket usable with :meth:`cancel`."""
        if event.time < 0:
            raise ValueError(f"event time must be >= 0, got {event.time}")
        ticket = next(self._counter)
        prio = self._PRIORITY.get(event.kind, 9)
        heapq.heappush(self._heap, (event.time, prio, ticket, event))
        return ticket

    def cancel(self, ticket: int) -> None:
        """Mark a scheduled event as void; it will be skipped on pop."""
        self._cancelled.add(ticket)

    def pop(self) -> Optional[Event]:
        """Next live event, or None when the queue is drained."""
        while self._heap:
            _, _, ticket, event = heapq.heappop(self._heap)
            if ticket in self._cancelled:
                self._cancelled.discard(ticket)
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        while self._heap:
            time_, _, ticket, _ = self._heap[0]
            if ticket in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(ticket)
                continue
            return time_
        return None

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
