"""Accounting for the event-driven simulator: energy, latency, residency.

:func:`compile_report` is the single report-assembly path: the scalar
event loop (:class:`~repro.sim.simulator.DPMSimulator`) feeds it its
trackers' raw sequences, the vectorized busy-period kernel
(:mod:`repro.runtime.eventsim`) feeds it array aggregates — both produce
a :class:`SimReport` through identical arithmetic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.metrics import latency_percentiles


@dataclass
class SimReport:
    """Final metrics of one event-driven simulation run."""

    duration: float                 #: simulated seconds
    total_energy: float             #: joules
    mean_power: float               #: watts
    energy_saving_ratio: float      #: vs. always-on at home-state power
    n_requests: int
    mean_latency: float             #: seconds per request (arrival->done)
    p50_latency: float
    p95_latency: float
    p99_latency: float
    max_latency: float
    n_shutdowns: int                #: down-transitions taken
    n_wrong_shutdowns: int          #: idle period shorter than break-even
    n_idle_periods: int
    mean_idle_length: float
    state_residency: Dict[str, float]  #: seconds per power condition
    #: per-request completion delays in arrival order; kept so aggregation
    #: layers (the fleet report) can merge completion streams exactly
    #: instead of approximating tail quantiles from per-run summaries
    latencies: Tuple[float, ...] = field(default=(), repr=False)


class EnergyMeter:
    """Integrates power over piecewise-constant conditions."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._last_time = start_time
        self._power = 0.0
        self._condition = ""
        self.total_energy = 0.0
        self.residency: Dict[str, float] = defaultdict(float)

    def set_condition(self, now: float, power: float, label: str) -> None:
        """Close the current interval and open a new one at ``power``."""
        if now < self._last_time - 1e-12:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        span = max(0.0, now - self._last_time)
        self.total_energy += self._power * span
        if self._condition:
            self.residency[self._condition] += span
        self._last_time = now
        self._power = power
        self._condition = label

    def add_lump(self, energy: float) -> None:
        """Charge an instantaneous energy cost (zero-latency transition)."""
        if energy < 0:
            raise ValueError("lump energy must be >= 0")
        self.total_energy += energy

    def finish(self, now: float) -> None:
        """Close the final interval at ``now``."""
        self.set_condition(now, 0.0, "")


class LatencyTracker:
    """Per-request waiting+service latency collection."""

    def __init__(self) -> None:
        self._latencies: List[float] = []

    def record(self, arrival_time: float, completion_time: float) -> None:
        if completion_time < arrival_time - 1e-12:
            raise ValueError("completion precedes arrival")
        self._latencies.append(max(0.0, completion_time - arrival_time))

    @property
    def count(self) -> int:
        return len(self._latencies)

    @property
    def values(self) -> List[float]:
        """Recorded latencies in arrival order (for report assembly)."""
        return list(self._latencies)

    def mean(self) -> float:
        return float(np.mean(self._latencies)) if self._latencies else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self._latencies, q)) if self._latencies else 0.0

    def maximum(self) -> float:
        return float(np.max(self._latencies)) if self._latencies else 0.0


class IdleTracker:
    """Idle-period bookkeeping: lengths, shutdowns, wrong shutdowns."""

    def __init__(self) -> None:
        self.idle_lengths: List[float] = []
        self.n_shutdowns = 0
        self.n_wrong_shutdowns = 0

    def record_idle(self, length: float) -> None:
        self.idle_lengths.append(max(0.0, length))

    def record_shutdown(self, idle_length: Optional[float], break_even: float) -> None:
        """Count a down transition; flag it wrong if the idle period it
        covered was shorter than the target's break-even time."""
        self.n_shutdowns += 1
        if idle_length is not None and idle_length < break_even:
            self.n_wrong_shutdowns += 1

    def mean_idle(self) -> float:
        return float(np.mean(self.idle_lengths)) if self.idle_lengths else 0.0


def compile_report(
    home_power: float,
    end_time: float,
    total_energy: float,
    latencies: Sequence[float],
    idle_lengths: Sequence[float],
    n_shutdowns: int,
    n_wrong_shutdowns: int,
    state_residency: Dict[str, float],
    keep_latencies: bool = True,
) -> SimReport:
    """Assemble the final :class:`SimReport` from raw run aggregates.

    Shared by the scalar event loop and the vectorized kernel so the two
    paths cannot drift in how summary metrics are derived.

    ``keep_latencies=False`` drops the raw per-request array once the
    summary percentiles are computed — the opt-out for callers (the
    sweep runners) that never merge completion streams downstream, so
    per-replication reports shipped back from worker processes stay
    small.
    """
    latencies = np.asarray(latencies, dtype=float)
    idle_lengths = np.asarray(idle_lengths, dtype=float)
    duration = end_time if end_time > 0 else 1.0
    mean_power = total_energy / duration
    saving = 1.0 - mean_power / home_power if home_power > 0 else 0.0
    p50, p95, p99 = latency_percentiles(latencies)
    return SimReport(
        duration=end_time,
        total_energy=total_energy,
        mean_power=mean_power,
        energy_saving_ratio=saving,
        n_requests=int(latencies.size),
        mean_latency=float(np.mean(latencies)) if latencies.size else 0.0,
        p50_latency=p50,
        p95_latency=p95,
        p99_latency=p99,
        max_latency=float(np.max(latencies)) if latencies.size else 0.0,
        n_shutdowns=int(n_shutdowns),
        n_wrong_shutdowns=int(n_wrong_shutdowns),
        n_idle_periods=int(idle_lengths.size),
        mean_idle_length=float(np.mean(idle_lengths)) if idle_lengths.size else 0.0,
        state_residency=dict(state_residency),
        latencies=tuple(latencies.tolist()) if keep_latencies else (),
    )
