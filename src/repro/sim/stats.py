"""Accounting for the event-driven simulator: energy, latency, residency."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class SimReport:
    """Final metrics of one event-driven simulation run."""

    duration: float                 #: simulated seconds
    total_energy: float             #: joules
    mean_power: float               #: watts
    energy_saving_ratio: float      #: vs. always-on at home-state power
    n_requests: int
    mean_latency: float             #: seconds per request (arrival->done)
    p95_latency: float
    max_latency: float
    n_shutdowns: int                #: down-transitions taken
    n_wrong_shutdowns: int          #: idle period shorter than break-even
    n_idle_periods: int
    mean_idle_length: float
    state_residency: Dict[str, float]  #: seconds per power condition


class EnergyMeter:
    """Integrates power over piecewise-constant conditions."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._last_time = start_time
        self._power = 0.0
        self._condition = ""
        self.total_energy = 0.0
        self.residency: Dict[str, float] = defaultdict(float)

    def set_condition(self, now: float, power: float, label: str) -> None:
        """Close the current interval and open a new one at ``power``."""
        if now < self._last_time - 1e-12:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        span = max(0.0, now - self._last_time)
        self.total_energy += self._power * span
        if self._condition:
            self.residency[self._condition] += span
        self._last_time = now
        self._power = power
        self._condition = label

    def add_lump(self, energy: float) -> None:
        """Charge an instantaneous energy cost (zero-latency transition)."""
        if energy < 0:
            raise ValueError("lump energy must be >= 0")
        self.total_energy += energy

    def finish(self, now: float) -> None:
        """Close the final interval at ``now``."""
        self.set_condition(now, 0.0, "")


class LatencyTracker:
    """Per-request waiting+service latency collection."""

    def __init__(self) -> None:
        self._latencies: List[float] = []

    def record(self, arrival_time: float, completion_time: float) -> None:
        if completion_time < arrival_time - 1e-12:
            raise ValueError("completion precedes arrival")
        self._latencies.append(max(0.0, completion_time - arrival_time))

    @property
    def count(self) -> int:
        return len(self._latencies)

    def mean(self) -> float:
        return float(np.mean(self._latencies)) if self._latencies else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self._latencies, q)) if self._latencies else 0.0

    def maximum(self) -> float:
        return float(np.max(self._latencies)) if self._latencies else 0.0


class IdleTracker:
    """Idle-period bookkeeping: lengths, shutdowns, wrong shutdowns."""

    def __init__(self) -> None:
        self.idle_lengths: List[float] = []
        self.n_shutdowns = 0
        self.n_wrong_shutdowns = 0

    def record_idle(self, length: float) -> None:
        self.idle_lengths.append(max(0.0, length))

    def record_shutdown(self, idle_length: Optional[float], break_even: float) -> None:
        """Count a down transition; flag it wrong if the idle period it
        covered was shorter than the target's break-even time."""
        self.n_shutdowns += 1
        if idle_length is not None and idle_length < break_even:
            self.n_wrong_shutdowns += 1

    def mean_idle(self) -> float:
        return float(np.mean(self.idle_lengths)) if self.idle_lengths else 0.0
