"""Event-driven continuous-time DPM simulation."""

from .events import ARRIVAL, SERVICE_DONE, TIMEOUT, TRANSITION_DONE, Event, EventQueue
from .policy_api import (
    NEVER,
    BatchIdleContext,
    BatchIdleDecision,
    EventPolicy,
    IdleContext,
    IdleDecision,
    StepBatchContext,
)
from .simulator import DPMSimulator, default_wait_state, resolve_demands
from .stats import EnergyMeter, IdleTracker, LatencyTracker, SimReport, compile_report

__all__ = [
    "Event",
    "EventQueue",
    "ARRIVAL",
    "SERVICE_DONE",
    "TRANSITION_DONE",
    "TIMEOUT",
    "EventPolicy",
    "IdleContext",
    "IdleDecision",
    "BatchIdleContext",
    "BatchIdleDecision",
    "StepBatchContext",
    "NEVER",
    "DPMSimulator",
    "default_wait_state",
    "resolve_demands",
    "SimReport",
    "compile_report",
    "EnergyMeter",
    "LatencyTracker",
    "IdleTracker",
]
