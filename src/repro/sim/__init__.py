"""Event-driven continuous-time DPM simulation."""

from .events import ARRIVAL, SERVICE_DONE, TIMEOUT, TRANSITION_DONE, Event, EventQueue
from .policy_api import NEVER, EventPolicy, IdleContext, IdleDecision
from .simulator import DPMSimulator, default_wait_state
from .stats import EnergyMeter, IdleTracker, LatencyTracker, SimReport

__all__ = [
    "Event",
    "EventQueue",
    "ARRIVAL",
    "SERVICE_DONE",
    "TRANSITION_DONE",
    "TIMEOUT",
    "EventPolicy",
    "IdleContext",
    "IdleDecision",
    "NEVER",
    "DPMSimulator",
    "default_wait_state",
    "SimReport",
    "EnergyMeter",
    "LatencyTracker",
    "IdleTracker",
]
