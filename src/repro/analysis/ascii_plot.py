"""Terminal line plots and tables for the experiment harness.

The figures of the paper are reproduced as ASCII charts printed by the
benchmarks and the CLI — no plotting dependency needed, and the output is
archived verbatim in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

#: glyphs assigned to successive series
_GLYPHS = "*o+x#@%&"


def ascii_chart(
    x: np.ndarray,
    series: Dict[str, np.ndarray],
    width: int = 78,
    height: int = 18,
    title: str = "",
    y_label: str = "",
    vlines: Sequence[float] = (),
    hlines: Dict[str, float] = None,
) -> str:
    """Render one or more aligned series as an ASCII chart.

    Parameters
    ----------
    x:
        Common x-coordinates (monotone).
    series:
        Mapping name -> y array (same length as ``x``).
    vlines:
        X positions marked with vertical bars (Fig. 2 switching points).
    hlines:
        Mapping name -> y value drawn as a horizontal dashed reference
        (Fig. 1 optimal line).
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0 or not series:
        return "(no data)"
    hlines = hlines or {}
    ys = [np.asarray(v, dtype=float) for v in series.values()]
    for y in ys:
        if y.shape != x.shape:
            raise ValueError("all series must align with x")
    y_all = np.concatenate(ys + [np.asarray(list(hlines.values()))]
                           if hlines else ys)
    y_min = float(np.nanmin(y_all))
    y_max = float(np.nanmax(y_all))
    if y_max <= y_min:
        y_max = y_min + 1.0
    pad = 0.05 * (y_max - y_min)
    y_min -= pad
    y_max += pad
    x_min, x_max = float(x[0]), float(x[-1])
    if x_max <= x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col_of(xv: float) -> int:
        return int(round((xv - x_min) / (x_max - x_min) * (width - 1)))

    def row_of(yv: float) -> int:
        frac = (yv - y_min) / (y_max - y_min)
        return int(round((1.0 - frac) * (height - 1)))

    for xv in vlines:
        if x_min <= xv <= x_max:
            c = col_of(xv)
            for r in range(height):
                grid[r][c] = "|"
    for value in hlines.values():
        r = row_of(value)
        if 0 <= r < height:
            for c in range(width):
                if grid[r][c] == " ":
                    grid[r][c] = "-"
    for glyph, y in zip(_GLYPHS, ys):
        for xv, yv in zip(x, y):
            if np.isnan(yv):
                continue
            r, c = row_of(float(yv)), col_of(float(xv))
            if 0 <= r < height and 0 <= c < width:
                grid[r][c] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, series)
    )
    extra = "  ".join(f"--={name}" for name in hlines)
    if legend or extra:
        lines.append((legend + ("  " + extra if extra else "")).strip())
    top = f"{y_max:.3f}"
    bottom = f"{y_min:.3f}"
    label_w = max(len(top), len(bottom), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top
        elif i == height - 1:
            label = bottom
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_w}} |" + "".join(row))
    lines.append(" " * (label_w + 2) + f"{x_min:.0f}" + " " * max(1, width - 16)
                 + f"{x_max:.0f}")
    return "\n".join(lines)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Monospace table with auto-sized columns."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
