"""Metrics over learning curves: convergence and response times.

Quantifies the two figure claims:

- Fig. 1 — *convergence time*: first record point after which the learner
  stays within a tolerance band of the optimal reference.
- Fig. 2 — *response time*: slots needed after each switching point to
  re-enter the band around the new segment's optimum; "responds almost
  instantly" becomes a number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


def convergence_point(
    slots: np.ndarray,
    series: np.ndarray,
    target: float,
    tolerance: float,
    sustain: int = 3,
) -> Optional[int]:
    """First slot index at which ``series`` enters ``target +- tolerance``
    and stays there for ``sustain`` consecutive record points (to the end
    of the data or at least ``sustain`` points).

    Returns None if the series never settles.
    """
    slots = np.asarray(slots)
    series = np.asarray(series)
    if slots.shape != series.shape:
        raise ValueError("slots and series must be aligned")
    if sustain < 1:
        raise ValueError("sustain must be >= 1")
    inside = np.abs(series - target) <= tolerance
    n = len(inside)
    for i in range(n):
        if not inside[i]:
            continue
        horizon = min(n, i + sustain)
        if inside[i:horizon].all():
            return int(slots[i])
    return None


@dataclass(frozen=True)
class SwitchResponse:
    """Recovery behaviour after one regime switch."""

    switch_slot: int
    target: float               #: new segment's optimal value
    dip: float                  #: worst series value in the segment
    recovery_slot: Optional[int]  #: slot of re-entry into the band
    response_slots: Optional[int]  #: recovery_slot - switch_slot


def switch_responses(
    slots: np.ndarray,
    series: np.ndarray,
    switch_points: Sequence[int],
    targets: Sequence[float],
    tolerance: float,
    sustain: int = 3,
    horizon: Optional[int] = None,
) -> List[SwitchResponse]:
    """Per-switch recovery analysis for a Fig. 2-style run.

    ``targets`` holds the optimal value of each segment *after* the
    corresponding switch (len == len(switch_points)).
    """
    slots = np.asarray(slots)
    series = np.asarray(series)
    if len(switch_points) != len(targets):
        raise ValueError("switch_points and targets must be aligned")
    results: List[SwitchResponse] = []
    bounds = list(switch_points) + [int(slots[-1]) + 1 if len(slots) else 0]
    for i, (switch, target) in enumerate(zip(switch_points, targets)):
        seg_end = bounds[i + 1] if horizon is None else min(bounds[i + 1], horizon)
        mask = (slots >= switch) & (slots < seg_end)
        seg_slots = slots[mask]
        seg_series = series[mask]
        if seg_slots.size == 0:
            results.append(SwitchResponse(switch, target, float("nan"), None, None))
            continue
        dip = float(seg_series.min())
        rec = convergence_point(seg_slots, seg_series, target, tolerance, sustain)
        response = None if rec is None else int(rec - switch)
        results.append(SwitchResponse(switch, target, dip, rec, response))
    return results


def steady_state_mean(series: np.ndarray, tail_fraction: float = 0.25) -> float:
    """Mean of the trailing fraction of a series (post-burn-in estimate)."""
    series = np.asarray(series)
    if series.size == 0:
        raise ValueError("series is empty")
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    start = int(series.size * (1.0 - tail_fraction))
    return float(series[start:].mean())


def regret_vs_reference(
    series: np.ndarray,
    reference: float,
) -> float:
    """Mean shortfall of a series against a fixed reference value."""
    series = np.asarray(series)
    if series.size == 0:
        raise ValueError("series is empty")
    return float(np.mean(reference - series))


#: tail-latency quantiles reported by simulator and fleet summaries
TAIL_QUANTILES = (50.0, 95.0, 99.0)


def latency_percentiles(
    delays: Sequence[float],
    qs: Sequence[float] = TAIL_QUANTILES,
) -> Tuple[float, ...]:
    """Percentiles of a completion-delay stream, aligned with ``qs``.

    The tail-latency summary of the event simulator and the fleet
    aggregation layer (p50/p95/p99 by default).  An empty stream yields
    zeros, matching the simulator's empty-trace report convention.
    """
    qs = tuple(float(q) for q in qs)
    if not qs:
        raise ValueError("need at least one quantile")
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantiles must be in [0, 100], got {q}")
    delays = np.asarray(delays, dtype=float)
    if delays.size == 0:
        return tuple(0.0 for _ in qs)
    if not np.isfinite(delays).all():
        bad = int(np.count_nonzero(~np.isfinite(delays)))
        raise ValueError(
            f"latency stream contains {bad} non-finite value(s); "
            "percentiles over NaN/inf would silently poison the tail summary"
        )
    return tuple(float(v) for v in np.percentile(delays, qs))
