"""Bootstrap confidence intervals for experiment summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass(frozen=True)
class CI:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}]"

    @property
    def half_width(self) -> float:
        """Half the CI width (symmetric summaries in tables)."""
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_ci(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> CI:
    """Percentile-bootstrap CI of an arbitrary statistic.

    Raises
    ------
    ValueError
        On empty input or a confidence outside (0, 1).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)
    point = float(statistic(samples))
    if samples.size == 1:
        return CI(point, point, point, confidence)
    idx = rng.integers(0, samples.size, size=(n_resamples, samples.size))
    stats = np.array([statistic(samples[row]) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return CI(point, float(low), float(high), confidence)
