"""Analysis helpers: curve metrics, bootstrap CIs, terminal plots."""

from .ascii_plot import ascii_chart, format_table
from .competitive import (
    CompetitiveReport,
    competitive_report,
    energy_break_even,
    deterministic_lower_bound_ratio,
    idle_period_energy_oracle,
    idle_period_energy_timeout,
)
from .bootstrap import CI, bootstrap_ci
from .metrics import (
    TAIL_QUANTILES,
    SwitchResponse,
    convergence_point,
    latency_percentiles,
    regret_vs_reference,
    steady_state_mean,
    switch_responses,
)

__all__ = [
    "ascii_chart",
    "CompetitiveReport",
    "competitive_report",
    "energy_break_even",
    "idle_period_energy_timeout",
    "idle_period_energy_oracle",
    "deterministic_lower_bound_ratio",
    "format_table",
    "CI",
    "bootstrap_ci",
    "convergence_point",
    "switch_responses",
    "SwitchResponse",
    "steady_state_mean",
    "regret_vs_reference",
    "latency_percentiles",
    "TAIL_QUANTILES",
]
