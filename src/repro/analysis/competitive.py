"""Competitive analysis of online shutdown policies.

The theory backdrop of every timeout policy: for a two-state device the
idle-period problem is the ski-rental problem, a deterministic timeout
equal to the break-even time is 2-competitive against the offline oracle,
and no deterministic online policy beats 2.  This module computes, per
idle period and per trace, the exact energy an idle policy and the
oracle spend, and from them the empirical competitive ratio — used by
tests to certify the implementations and by the EXT-POLICY context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..device import PowerStateMachine


@dataclass(frozen=True)
class CompetitiveReport:
    """Energy accounting of a policy against the oracle on one trace."""

    policy_energy: float       #: idle-period energy of the online policy
    oracle_energy: float       #: idle-period energy of the oracle
    ratio: float               #: policy / oracle (>= 1)
    worst_period_ratio: float  #: max per-period ratio
    n_periods: int


def idle_period_energy_timeout(
    device: PowerStateMachine,
    idle_length: float,
    timeout: float,
    rest_state: Optional[str] = None,
    wait_state: Optional[str] = None,
) -> float:
    """Exact energy of a timeout policy over one idle period.

    Waits ``timeout`` seconds in ``wait_state`` (default: home), then
    moves to ``rest_state`` (default: deepest) for the remainder; charges
    the round-trip transition energy if the shutdown happened.  Matches
    the break-even accounting of
    :meth:`~repro.device.PowerStateMachine.idle_energy`.
    """
    if idle_length < 0:
        raise ValueError("idle_length must be >= 0")
    if timeout < 0:
        raise ValueError("timeout must be >= 0")
    home = device.initial_state
    wait = wait_state if wait_state is not None else home
    rest = rest_state if rest_state is not None else device.deepest_state()
    p_wait = device.state(wait).power
    if idle_length <= timeout:
        return p_wait * idle_length
    rt_energy, rt_latency = device.round_trip(home, rest)
    resident = max(0.0, idle_length - timeout - rt_latency)
    return p_wait * timeout + rt_energy + device.state(rest).power * resident


def idle_period_energy_oracle(
    device: PowerStateMachine,
    idle_length: float,
    rest_state: Optional[str] = None,
    wait_state: Optional[str] = None,
) -> float:
    """Oracle energy: min(stay in wait state, shut down immediately)."""
    stay = idle_period_energy_timeout(
        device, idle_length, timeout=np.inf, wait_state=wait_state
    )
    sleep = idle_period_energy_timeout(
        device, idle_length, timeout=0.0, rest_state=rest_state,
        wait_state=wait_state,
    )
    return min(stay, sleep)


def energy_break_even(
    device: PowerStateMachine,
    rest_state: Optional[str] = None,
    home_state: Optional[str] = None,
) -> float:
    """The *unclamped* energy break-even time — the 2-competitive timeout.

    Solves ``P_home * T = E_rt + P_rest * (T - L_rt)`` without the
    round-trip-latency clamp that
    :meth:`~repro.device.PowerStateMachine.break_even_time` applies.  The
    clamp answers "when is a shutdown profitable at all"; competitiveness
    needs the pure energy-indifference point, because a timeout equal to
    the *clamped* value can be 3-competitive or worse on devices whose
    round-trip latency exceeds the energy break-even.
    """
    home = home_state if home_state is not None else device.initial_state
    rest = rest_state if rest_state is not None else device.deepest_state()
    p_home = device.state(home).power
    p_rest = device.state(rest).power
    if p_rest >= p_home:
        raise ValueError(f"{rest!r} does not save power over {home!r}")
    rt_energy, rt_latency = device.round_trip(home, rest)
    return (rt_energy - p_rest * rt_latency) / (p_home - p_rest)


def competitive_report(
    device: PowerStateMachine,
    idle_lengths: np.ndarray,
    timeout: Optional[float] = None,
    rest_state: Optional[str] = None,
) -> CompetitiveReport:
    """Empirical competitive ratio of a timeout policy on idle periods.

    ``timeout=None`` uses the :func:`energy_break_even` timeout (the
    2-competitive choice).  Periods of zero oracle energy (zero length)
    are skipped in the worst-period statistic.
    """
    idle_lengths = np.asarray(idle_lengths, dtype=float)
    if idle_lengths.size == 0:
        raise ValueError("need at least one idle period")
    if np.any(idle_lengths < 0):
        raise ValueError("idle lengths must be >= 0")
    rest = rest_state if rest_state is not None else device.deepest_state()
    if timeout is None:
        timeout = energy_break_even(device, rest)

    policy_total = 0.0
    oracle_total = 0.0
    worst = 1.0
    for length in idle_lengths:
        p = idle_period_energy_timeout(device, float(length), timeout, rest)
        o = idle_period_energy_oracle(device, float(length), rest)
        policy_total += p
        oracle_total += o
        if o > 1e-12:
            worst = max(worst, p / o)
    ratio = policy_total / oracle_total if oracle_total > 0 else 1.0
    return CompetitiveReport(
        policy_energy=policy_total,
        oracle_energy=oracle_total,
        ratio=ratio,
        worst_period_ratio=worst,
        n_periods=int(idle_lengths.size),
    )


def deterministic_lower_bound_ratio() -> float:
    """The classic lower bound: no deterministic online shutdown policy is
    better than 2-competitive (ski rental)."""
    return 2.0
