"""Experiment harnesses reproducing every figure, table, and claim."""

from .config import (
    EnvConfig,
    Fig1Config,
    Fig2Config,
    FleetConfig,
    GridConfig,
    OverheadConfig,
    PolicyTableConfig,
    SimSweepConfig,
    SweepConfig,
    VariationConfig,
)
from .fig1_convergence import Fig1Result, run_fig1
from .fig2_nonstationary import Fig2Result, run_fig2
from .fleet_sweep import build_spec as build_fleet_sweep_spec
from .fleet_sweep import run_fleet_sweep
from .grid_table import run_grid
from .overhead import OverheadResult, OverheadRow, run_overhead
from .policy_table import PolicyTableResult, PolicyTableRow, run_policy_table
from .sim_sweep import build_spec as build_sim_sweep_spec
from .sim_sweep import run_sim_sweep
from .variation import VariationResult, VariationRow, run_variation

__all__ = [
    "EnvConfig",
    "SweepConfig",
    "Fig1Config",
    "Fig2Config",
    "GridConfig",
    "OverheadConfig",
    "VariationConfig",
    "PolicyTableConfig",
    "run_fig1",
    "Fig1Result",
    "run_fig2",
    "Fig2Result",
    "run_grid",
    "run_overhead",
    "OverheadResult",
    "OverheadRow",
    "run_variation",
    "VariationResult",
    "VariationRow",
    "run_policy_table",
    "PolicyTableResult",
    "PolicyTableRow",
    "SimSweepConfig",
    "run_sim_sweep",
    "build_sim_sweep_spec",
    "FleetConfig",
    "run_fleet_sweep",
    "build_fleet_sweep_spec",
]
