"""CLAIM-EFF / CLAIM-MEM reproduction: runtime and memory overhead.

The paper's efficiency claims, quantified:

- "On each step, the DPM daemon only needs to select the maximum Q(s, a)
  and update the Q(s, a) using Eqn. 3" — we time that pair of O(|A|)
  operations.
- "the widely applied linear programming policy optimization runs
  extremely slow" — we time one LP policy optimization (plus policy /
  value iteration for context) on the same MDP.
- "Q values can be encoded in a |s| x |a| table that requires a little
  bit memory" — we compare the Q-table bytes with the explicit model
  bytes the model-based flow must hold.

Swept over queue capacities to show how the gap scales with state count.
The batched runtime's amortization is quantified alongside: one
decide+update for ``batch_size`` replicas at once
(:meth:`~repro.core.QTable.batch_best_action` /
:meth:`~repro.core.QTable.batch_update`) vs the scalar pair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis import format_table
from ..core import QTable
from ..device import get_preset
from ..env import build_dpm_model
from .config import OverheadConfig


@dataclass
class OverheadRow:
    """One row of the overhead table (one state-space size)."""

    queue_capacity: int
    n_states: int
    n_actions: int
    q_step_us: float        #: one greedy select + one Q update (microseconds)
    q_batch_us: float       #: same pair per replica on the batched path
    lp_ms: float            #: one LP policy optimization (milliseconds)
    pi_ms: float            #: one policy iteration solve
    vi_ms: float            #: one value iteration solve
    lp_over_q: float        #: LP cost / Q step cost
    q_table_kb: float       #: Q-table footprint
    model_kb: float         #: explicit model footprint

    @property
    def model_over_table(self) -> float:
        """Memory blow-up of holding the model instead of the table."""
        return self.model_kb / self.q_table_kb if self.q_table_kb else float("inf")

    @property
    def batch_speedup(self) -> float:
        """Scalar / batched per-replica Q-step cost."""
        return self.q_step_us / self.q_batch_us if self.q_batch_us else float("inf")


@dataclass
class OverheadResult:
    """The full sweep."""

    config: OverheadConfig
    rows: List[OverheadRow]

    def render(self) -> str:
        """Text table for the CLAIM-EFF / CLAIM-MEM record."""
        headers = [
            "Qcap", "|S|", "|A|", "Q step (us)", "Qbatch (us)", "batchx",
            "LP (ms)", "PI (ms)", "VI (ms)", "LP/Qstep", "Qtab (KB)",
            "model (KB)", "model/Qtab",
        ]
        rows = [
            [
                r.queue_capacity, r.n_states, r.n_actions,
                round(r.q_step_us, 2), round(r.q_batch_us, 3),
                round(r.batch_speedup, 1),
                round(r.lp_ms, 2), round(r.pi_ms, 2),
                round(r.vi_ms, 2), round(r.lp_over_q),
                round(r.q_table_kb, 1), round(r.model_kb, 1),
                round(r.model_over_table),
            ]
            for r in self.rows
        ]
        return format_table(
            headers, rows,
            title="CLAIM-EFF / CLAIM-MEM: per-adaptation cost and memory",
        )


def _time_q_step(n_states: int, n_actions: int, reps: int) -> float:
    """Microseconds for one greedy select + one Eqn.-3 update."""
    table = QTable(n_states, n_actions, initial_value=0.0)
    rng = np.random.default_rng(0)
    obs = rng.integers(0, n_states, size=reps)
    nxt = rng.integers(0, n_states, size=reps)
    rewards = rng.normal(size=reps)
    allowed = list(range(n_actions))
    start = time.perf_counter()
    for i in range(reps):
        action = table.best_action(int(obs[i]), allowed)
        target = rewards[i] + 0.95 * table.max_value(int(nxt[i]), allowed)
        table.update_toward(int(obs[i]), action, target, 0.1)
    elapsed = time.perf_counter() - start
    return elapsed / reps * 1e6


def _time_q_step_batched(
    n_states: int, n_actions: int, batch_size: int, reps: int
) -> float:
    """Microseconds per replica for one batched select + Eqn.-3 update.

    Times the same decide+update pair as :func:`_time_q_step`, but for
    ``batch_size`` replicas per call on the batched Q-table primitives.
    """
    table = QTable(n_states, n_actions, initial_value=0.0)
    rng = np.random.default_rng(0)
    n_rounds = max(1, reps // batch_size)
    obs = rng.integers(0, n_states, size=(n_rounds, batch_size))
    nxt = rng.integers(0, n_states, size=(n_rounds, batch_size))
    rewards = rng.normal(size=(n_rounds, batch_size))
    mask = np.ones((batch_size, n_actions), dtype=bool)
    start = time.perf_counter()
    for i in range(n_rounds):
        actions = table.batch_best_action(obs[i], mask, validate=False)
        targets = rewards[i] + 0.95 * table.batch_max_value(
            nxt[i], mask, validate=False
        )
        table.batch_update(obs[i], actions, targets, 0.1)
    elapsed = time.perf_counter() - start
    return elapsed / (n_rounds * batch_size) * 1e6


def _time_solver(model, discount: float, method: str) -> float:
    """Milliseconds for one offline solve."""
    start = time.perf_counter()
    model.solve(discount, method)
    return (time.perf_counter() - start) * 1e3


def run_overhead(config: OverheadConfig = OverheadConfig()) -> OverheadResult:
    """Run the overhead sweep; wall-clock timings are machine-relative,
    the *ratios* are the reproduced claim."""
    device = get_preset(config.env.device)
    rows: List[OverheadRow] = []
    for qcap in config.queue_capacities:
        model = build_dpm_model(
            device,
            arrival_rate=config.arrival_rate,
            slot_length=config.env.slot_length,
            queue_capacity=qcap,
            p_serve=config.env.p_serve,
            perf_weight=config.env.perf_weight,
            loss_penalty=config.env.loss_penalty,
        )
        n_states = model.mdp.n_states
        n_actions = model.mdp.n_actions
        q_us = _time_q_step(n_states, n_actions, config.n_q_ops)
        q_batch_us = _time_q_step_batched(
            n_states, n_actions, config.batch_size, config.n_q_ops
        )
        lp_ms = _time_solver(model, config.env.discount, "linear_programming")
        pi_ms = _time_solver(model, config.env.discount, "policy_iteration")
        vi_ms = _time_solver(model, config.env.discount, "value_iteration")
        mem = model.mdp.memory_bytes()
        rows.append(
            OverheadRow(
                queue_capacity=qcap,
                n_states=n_states,
                n_actions=n_actions,
                q_step_us=q_us,
                q_batch_us=q_batch_us,
                lp_ms=lp_ms,
                pi_ms=pi_ms,
                vi_ms=vi_ms,
                lp_over_q=(lp_ms * 1e3) / q_us if q_us > 0 else float("inf"),
                q_table_kb=mem["q_table_bytes"] / 1024,
                model_kb=mem["model_bytes"] / 1024,
            )
        )
    return OverheadResult(config=config, rows=rows)
