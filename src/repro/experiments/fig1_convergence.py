"""FIG1 reproduction: "Convergence on Optimal Policy".

Protocol (paper section 3, Fig. 1): stationary synthetic input drives the
slotted environment; Q-DPM learns online; the reference is the optimal
policy "derived by analytical techniques which assume model is completely
known in prior".

The y-axis is the *payoff* — the paper's reinforcement signal, "energy
reduction or certain function of energy reduction": per-slot reward
``-(energy) - perf_weight * queue - loss_penalty * losses``.  Plotting
raw energy saving alone would be misleading (a policy that sleeps through
requests shows splendid savings); the payoff is the quantity the optimal
policy actually maximizes, so convergence *to the optimal line* is
well-defined.  We plot the windowed online payoff and, sampled at every
record point, the *exact* long-run payoff of the greedy policy snapshot
(stationary analysis — no exploration noise), plus the corresponding
energy-saving ratios as secondary data.

Rollouts route through the batched :class:`~repro.runtime.SweepRunner`:
``config.sweep.n_seeds`` independent learners train lock-step, the chart
shows the lead seed, and the across-seed payoff gets a bootstrap CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis import CI, ascii_chart, convergence_point
from ..device import get_preset
from ..env import build_dpm_model
from ..runtime import RolloutSpec, SweepRunner
from ..workload import ConstantRate
from .config import Fig1Config


@dataclass
class Fig1Result:
    """Everything needed to render and assert on the Fig. 1 reproduction."""

    config: Fig1Config
    slots: np.ndarray                 #: record points (slot indices)
    online_reward: np.ndarray         #: windowed payoff while learning
    online_saving: np.ndarray         #: windowed saving ratio while learning
    snapshot_reward: np.ndarray       #: exact payoff of eps-soft snapshots
    snapshot_saving: np.ndarray       #: exact saving of eps-soft snapshots
    optimal_reward: float             #: exact payoff of the optimal policy
    optimal_saving: float             #: exact saving of the optimal policy
    optimal_soft_reward: float        #: optimal policy made epsilon-soft
    final_policy_agreement: float     #: state agreement with the optimum
    convergence_slot: Optional[int]   #: online payoff enters the soft band
    n_seeds: int = 1                  #: independent learners swept
    reward_ci: Optional[CI] = None    #: across-seed horizon payoff CI
    execution: Optional[dict] = None  #: sweep execution metadata (verification)

    def render(self) -> str:
        """ASCII figure matching the paper's Fig. 1 layout.

        The online curve is the paper's y-axis; the dashed references are
        the exact optimal payoff and the exploration-fair version of it
        (the optimal policy forced to explore with the same epsilon the
        learner uses) — the level the online curve can actually reach.
        """
        chart = ascii_chart(
            self.slots,
            {"Q-DPM (online)": self.online_reward,
             "Q-DPM (snapshot, exact)": self.snapshot_reward},
            hlines={"optimal": self.optimal_reward,
                    "optimal(eps-soft)": self.optimal_soft_reward},
            title=(
                "Fig.1 Convergence on Optimal Policy "
                f"(arrival_rate={self.config.arrival_rate})"
            ),
            y_label="payoff",
        )
        conv = (
            f"{self.convergence_slot}" if self.convergence_slot is not None else "never"
        )
        tail = (
            f"\noptimal payoff/slot: {self.optimal_reward:.4f}"
            f" (energy-saving ratio {self.optimal_saving:.4f})"
            f"\noptimal payoff under the learner's epsilon: "
            f"{self.optimal_soft_reward:.4f}"
            f"\nfinal snapshot payoff (exact, eps-soft): "
            f"{self.snapshot_reward[-1]:.4f}"
            f" (saving {self.snapshot_saving[-1]:.4f})"
            f"\nfinal policy agreement: {self.final_policy_agreement:.3f}"
            f"\nconvergence slot (payoff band +-{self.config.tolerance} around "
            f"eps-soft optimal): {conv}"
        )
        if self.n_seeds > 1 and self.reward_ci is not None:
            tail += (
                f"\nonline payoff across {self.n_seeds} seeds: "
                f"{self.reward_ci} (95% bootstrap CI)"
            )
        return chart + tail


def run_fig1(config: Fig1Config = Fig1Config()) -> Fig1Result:
    """Run the FIG1 experiment; deterministic given the config seeds."""
    device = get_preset(config.env.device)
    model = build_dpm_model(
        device,
        arrival_rate=config.arrival_rate,
        slot_length=config.env.slot_length,
        queue_capacity=config.env.queue_capacity,
        p_serve=config.env.p_serve,
        perf_weight=config.env.perf_weight,
        loss_penalty=config.env.loss_penalty,
    )
    optimal = model.solve(config.env.discount, "policy_iteration")
    opt_perf = model.evaluate_policy(optimal.policy)
    opt_soft = model.evaluate_policy(optimal.policy, epsilon=config.epsilon)

    spec = RolloutSpec.from_env_config(
        config.env,
        ConstantRate(config.arrival_rate),
        config.n_slots,
        record_every=config.record_every,
        learning_rate=config.learning_rate,
        epsilon=config.epsilon,
    )
    seeds = config.seeds()

    snapshot_saving: List[float] = []
    snapshot_reward: List[float] = []
    lead: dict = {}

    def on_record(_slot: int, driver, chunk_seeds) -> None:
        # snapshot only the lead seed: evaluate the policy exactly *as
        # deployed*, epsilon-soft.  Q-DPM never stops exploring, and the
        # epsilon-soft chain is ergodic, so the evaluation is immune to
        # the absorbing-trap artifacts a strictly-greedy reading of a
        # half-trained table exhibits at rarely-visited states.
        if chunk_seeds[0] != seeds[0]:
            return
        policy = driver.greedy_policy(0)
        perf = model.evaluate_policy(policy, epsilon=config.epsilon)
        snapshot_saving.append(perf.energy_saving_ratio)
        snapshot_reward.append(perf.average_reward)

    def on_chunk_done(driver, chunk_seeds) -> None:
        if chunk_seeds[0] == seeds[0]:
            lead["driver"] = driver

    runner = SweepRunner(
        batch_size=config.sweep.batch_size, n_jobs=config.sweep.n_jobs,
        verify_fraction=config.sweep.verify_fraction,
        diagnostics_dir=config.sweep.diagnostics_dir,
    )
    sweep = runner.run_many(
        spec, seeds, on_record=on_record, on_chunk_done=on_chunk_done
    )
    history = sweep.runs[0].history

    # align: one snapshot per full window; drop a possible partial tail record
    n = len(snapshot_saving)
    slots = history.slots[:n]

    final_policy = lead["driver"].greedy_policy(0)
    agreement = final_policy.agreement(optimal.policy)
    conv = convergence_point(
        slots,
        history.reward[:n],
        opt_soft.average_reward,
        config.tolerance,
        config.sustain,
    )
    return Fig1Result(
        config=config,
        slots=np.asarray(slots),
        online_reward=history.reward[:n],
        online_saving=history.saving_ratio[:n],
        snapshot_reward=np.asarray(snapshot_reward),
        snapshot_saving=np.asarray(snapshot_saving),
        optimal_reward=opt_perf.average_reward,
        optimal_saving=opt_perf.energy_saving_ratio,
        optimal_soft_reward=opt_soft.average_reward,
        final_policy_agreement=agreement,
        convergence_slot=conv,
        n_seeds=len(seeds),
        reward_ci=sweep.reward_ci() if len(seeds) > 1 else None,
        execution=getattr(sweep, "execution", None),
    )
