"""Experiment configurations with the defaults used in EXPERIMENTS.md.

Every experiment is a pure function of its config dataclass (plus seeds),
so results in the paper-vs-measured log are replayable from the values
recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class EnvConfig:
    """Shared slotted-environment parameters (Fig. 1 / Fig. 2 device)."""

    device: str = "abstract3"      #: preset name from repro.device.PRESETS
    slot_length: float = 1.0
    queue_capacity: int = 8
    p_serve: float = 0.9
    perf_weight: float = 0.5
    loss_penalty: float = 2.0
    discount: float = 0.95


@dataclass(frozen=True)
class SweepConfig:
    """Multi-seed execution knobs shared by the sweep-capable experiments.

    ``n_seeds`` independent replicas run lock-step on the batched engine
    (:mod:`repro.runtime`), chunked ``batch_size`` at a time; seed ``i``
    is ``seed + i * seed_stride``.  ``n_jobs`` shards the chunks across
    worker processes (results are bit-identical for any
    ``(batch_size, n_jobs)`` combination).  With the default
    ``n_seeds = 1`` an experiment reproduces its classic single-seed
    protocol.

    ``verify_fraction`` turns on sampled shadow execution: that fraction
    of seed chunks is deterministically re-run on the scalar reference
    path and compared field-for-field (see
    :mod:`repro.runtime.verify`).  ``diagnostics_dir`` names a directory
    for minimal-repro bundles written on invariant violations or worker
    failures.
    """

    n_seeds: int = 1
    batch_size: int = 32
    seed_stride: int = 1_000
    n_jobs: int = 1
    verify_fraction: float = 0.0
    diagnostics_dir: Optional[str] = None

    def seeds(self, base_seed: int) -> List[int]:
        """The seed list this sweep realizes from an experiment's base seed."""
        return [
            base_seed + i * self.seed_stride for i in range(self.n_seeds)
        ]


@dataclass(frozen=True)
class Fig1Config:
    """FIG1 — convergence on the optimal policy (stationary input)."""

    env: EnvConfig = field(default_factory=EnvConfig)
    sweep: SweepConfig = field(default_factory=SweepConfig)
    arrival_rate: float = 0.15
    n_slots: int = 200_000
    record_every: int = 2_000
    learning_rate: float = 0.1
    epsilon: float = 0.08
    seed: int = 7
    tolerance: float = 0.03        #: convergence band around optimal saving
    sustain: int = 5               #: record points required inside the band

    def seeds(self) -> List[int]:
        """The seed list realized by the sweep settings."""
        return self.sweep.seeds(self.seed)


@dataclass(frozen=True)
class Fig2Config:
    """FIG2 — rapid response to piecewise-stationary input."""

    env: EnvConfig = field(default_factory=EnvConfig)
    sweep: SweepConfig = field(default_factory=SweepConfig)
    segment_rates: Tuple[float, ...] = (0.30, 0.05, 0.20, 0.02)
    segment_slots: int = 50_000
    record_every: int = 1_000
    # High constant learning rate = permanent plasticity: the knob that
    # buys the paper's "responds almost instantly" (the learning-rate
    # ablation bench quantifies the tracking-vs-noise trade-off).
    learning_rate: float = 0.5
    epsilon: float = 0.05
    seed: int = 11
    tolerance: float = 0.08       #: band around the segment steady level
    sustain: int = 3
    # model-based baseline
    mb_window: int = 2_000
    mb_min_samples: int = 2_000    #: samples needed for a trusted estimate
    mb_freeze_slots: int = 3_000   #: optimizer latency model (slots)
    mb_solver: str = "linear_programming"
    mb_initial_rate: float = 0.30
    mb_cusum_drift: float = 0.05
    mb_cusum_threshold: float = 20.0

    def seeds(self) -> List[int]:
        """The seed list realized by the sweep settings."""
        return self.sweep.seeds(self.seed)


@dataclass(frozen=True)
class OverheadConfig:
    """CLAIM-EFF / CLAIM-MEM — per-adaptation cost and memory sweep."""

    env: EnvConfig = field(default_factory=EnvConfig)
    queue_capacities: Tuple[int, ...] = (4, 8, 16, 32)
    arrival_rate: float = 0.15
    n_q_ops: int = 20_000          #: Q decide+update reps for timing
    batch_size: int = 32           #: replicas per batched Q-op timing rep


@dataclass(frozen=True)
class VariationConfig:
    """CLAIM-VAR — tolerance to small-scale parameter variation.

    The base rate sits on the policy-structure boundary of the abstract3
    device (~0.15-0.2: below it a single policy is optimal for *every*
    rate, above it frozen policies pay large regret), so the sinusoidal
    drift actually crosses decision boundaries — symmetric drift deep
    inside one region leaves a frozen optimal policy unhurt and would
    make the comparison vacuous.
    """

    env: EnvConfig = field(default_factory=EnvConfig)
    sweep: SweepConfig = field(default_factory=SweepConfig)
    base_rate: float = 0.2
    amplitudes: Tuple[float, ...] = (0.0, 0.1, 0.2)
    period: int = 40_000
    n_slots: int = 160_000
    learning_rate: float = 0.15
    epsilon: float = 0.02          #: low tax — drift is slow, mild
    seed: int = 23
    warmup_slots: int = 60_000     #: Q-DPM pre-training at the base rate

    def seeds(self) -> List[int]:
        """The seed list realized by the sweep settings."""
        return self.sweep.seeds(self.seed)


@dataclass(frozen=True)
class PolicyTableConfig:
    """EXT-POLICY — event-driven cross-policy comparison."""

    device: str = "mobile_hdd"
    duration: float = 40_000.0
    service_time: float = 0.4
    exp_rate: float = 0.05
    pareto_alpha: float = 1.6
    pareto_xm: float = 6.0
    seed: int = 3
    timeout_scale_alt: float = 2.0  #: second timeout variant, x break-even
    n_jobs: int = 1                #: worker processes for the policy x trace grid


@dataclass(frozen=True)
class SimSweepConfig:
    """SIM-SWEEP — scenario grid on the event-driven simulator.

    (device x trace family x policy) cells with ``n_traces`` seeded
    trace replications per cell, fanned across ``n_jobs`` worker
    processes in chunks of ``chunk_size`` and aggregated to mean +-
    bootstrap CI.  Stateless policies ride the vectorized busy-period
    kernel (:mod:`repro.runtime.eventsim`); stateful ones fall back to
    the scalar event loop inside the same cells.
    """

    devices: Tuple[str, ...] = ("mobile_hdd", "wlan")
    duration: float = 10_000.0
    service_time: float = 0.4
    exp_rate: float = 0.05
    pareto_alpha: float = 1.6
    pareto_xm: float = 6.0
    n_traces: int = 8
    seed: int = 3
    seed_stride: int = 101
    chunk_size: int = 4
    n_jobs: int = 1
    verify_fraction: float = 0.0   #: fraction of cells shadow-run on the scalar loop
    diagnostics_dir: Optional[str] = None


@dataclass(frozen=True)
class FleetConfig:
    """FLEET-SWEEP — multi-device dispatch grid on the event simulator.

    (fleet size x router x DPM policy) cells, each replicating ``device``
    ``fleet_sizes[i]`` times behind a dispatcher that routes one shared
    high-rate exponential arrival stream (``exp_rate`` is *fleet-wide*;
    per-device load shrinks as the fleet grows).  ``n_traces`` seeded
    stream replications per cell fan across ``n_jobs`` worker processes
    in chunks of ``chunk_size`` and aggregate to mean +- bootstrap CI.
    Stateless routers partition the stream with NumPy ops and every
    sub-trace rides the vectorized busy-period kernel; queue-aware
    routers (jsq, power_aware) use the scalar reference dispatcher path.

    ``mtbf`` switches on fault injection: each device fails and repairs
    on its own seeded exponential renewal process
    (:class:`~repro.workload.FaultProcess` with means ``mtbf`` /
    ``mttr``), and requests routed to a down device fail over under
    ``failover_policy`` with up to ``max_retries`` capped-exponential
    backoff retries.  ``checkpoint`` names a chunk-result journal file
    so an interrupted sweep resumes without recomputation.

    The overload knobs layer graceful degradation on top of the fault
    model.  ``brownout_severity`` makes fault intervals brownouts
    instead of outages: the device keeps serving but every request's
    service demand is multiplied by the severity (>= 1.0).  ``slo``
    gives each request a deadline ``arrival + slo``; requests whose
    predicted completion misses it are shed on admission.  ``breaker``
    arms a per-device circuit breaker that opens after that many
    consecutive failures, and ``retry_budget`` caps fleet-wide failover
    retries with a token bucket of that capacity (exhaustion sheds the
    request instead of retrying).  Any of them set implies the overload
    dispatch path; all ``None`` reproduces the plain failover sweep
    bit-for-bit.
    """

    device: str = "mobile_hdd"
    fleet_sizes: Tuple[int, ...] = (2, 8)
    routers: Tuple[str, ...] = (
        "round_robin", "random", "jsq", "power_aware"
    )
    duration: float = 2_000.0
    service_time: float = 0.4
    exp_rate: float = 1.0          #: fleet-wide arrival rate (requests/s)
    n_traces: int = 8
    seed: int = 17
    seed_stride: int = 101
    chunk_size: int = 4
    n_jobs: int = 1
    mtbf: Optional[float] = None   #: mean time between failures (s); None = no faults
    mttr: float = 50.0             #: mean time to repair (s)
    failover_policy: str = "next_best"
    max_retries: int = 3           #: failover retries before a request drops
    brownout_severity: Optional[float] = None  #: demand multiplier during faults (>= 1)
    slo: Optional[float] = None    #: per-request deadline = arrival + slo (s)
    breaker: Optional[int] = None  #: consecutive failures that trip a breaker
    retry_budget: Optional[float] = None  #: fleet-wide retry token capacity
    checkpoint: Optional[str] = None
    verify_fraction: float = 0.0   #: fraction of cells shadow-run on the scalar dispatcher
    diagnostics_dir: Optional[str] = None


@dataclass(frozen=True)
class GridConfig:
    """GRID — scenario grid over rate x device x horizon x controller.

    The grid-product workload the batched + sharded runtime opens: every
    cell is a multi-seed sweep (``sweep.n_seeds`` seeds, chunked
    ``sweep.batch_size`` at a time), and the whole cell x chunk matrix
    fans out across ``sweep.n_jobs`` worker processes.  Controllers:
    ``"qdpm"`` (learning) and ``"frozen"`` (optimal policy solved per
    cell at the cell's mean rate).
    """

    env: EnvConfig = field(default_factory=EnvConfig)
    sweep: SweepConfig = field(default_factory=lambda: SweepConfig(n_seeds=4))
    rates: Tuple[float, ...] = (0.05, 0.15, 0.30)
    devices: Tuple[str, ...] = ("abstract3", "two_state")
    horizons: Tuple[int, ...] = (40_000,)
    controllers: Tuple[str, ...] = ("qdpm", "frozen")
    record_every: int = 2_000
    learning_rate: float = 0.1
    epsilon: float = 0.08
    seed: int = 7

    def seeds(self) -> List[int]:
        """The seed list realized by the sweep settings."""
        return self.sweep.seeds(self.seed)
