"""FLEET-SWEEP: multi-device request dispatch on the event simulator.

Every other experiment manages *one* device; this one is what the
:mod:`repro.fleet` subsystem opens up: N replicas of a device sharing a
single high-rate arrival stream behind a dispatcher, across fleet
sizes, routing policies, and per-device DPM policies, with bootstrap
CIs over seeded stream replications.  The table answers the
cluster-scale questions the single-device reproduction cannot: how much
energy does power-aware routing buy over round-robin, and what does it
cost in tail latency on the merged completion stream.
"""

from __future__ import annotations

from ..baselines import AlwaysOn, FixedTimeout, GreedySleep, OracleShutdown
from ..device import get_preset
from ..fleet import (
    BreakerConfig,
    FailoverConfig,
    FleetSweepResult,
    FleetSweepRunner,
    FleetSweepSpec,
    OverloadConfig,
    RetryBudgetConfig,
)
from ..runtime import PolicySpec, TraceSpec
from ..workload import Exponential, FaultProcess
from .config import FleetConfig


def _policy_roster() -> tuple:
    """The per-device DPM arms; all stateless, so every sub-trace rides
    the vectorized busy-period kernel."""
    return (
        PolicySpec("always_on", AlwaysOn()),
        PolicySpec("greedy", GreedySleep()),
        PolicySpec("timeout(Tbe)", FixedTimeout()),
        PolicySpec("oracle", OracleShutdown(), oracle=True),
    )


def build_spec(config: FleetConfig = FleetConfig()) -> FleetSweepSpec:
    """The :class:`~repro.fleet.FleetSweepSpec` this config realizes."""
    get_preset(config.device)  # fail fast on unknown presets
    faults = None
    failover = FailoverConfig()
    if config.mtbf is not None:
        fault_kwargs = {"mtbf": config.mtbf, "mttr": config.mttr}
        if config.brownout_severity is not None:
            fault_kwargs["severity"] = float(config.brownout_severity)
        faults = FaultProcess(**fault_kwargs)
        failover = FailoverConfig(
            policy=config.failover_policy, max_retries=config.max_retries,
        )
    elif config.brownout_severity is not None:
        raise ValueError("brownout_severity requires mtbf (a fault process)")
    overload = None
    if (config.slo is not None or config.breaker is not None
            or config.retry_budget is not None
            or config.brownout_severity is not None):
        # The sweep spec requires spec.failover == overload.failover, so
        # the overload path reduces exactly to the failover path when the
        # degradation features are individually disabled.
        overload = OverloadConfig(
            failover=failover,
            breaker=(BreakerConfig(failure_threshold=int(config.breaker))
                     if config.breaker is not None else None),
            retry_budget=(RetryBudgetConfig(capacity=float(config.retry_budget))
                          if config.retry_budget is not None else None),
            slo=(float(config.slo) if config.slo is not None else None),
        )
    return FleetSweepSpec(
        device=config.device,
        fleet_sizes=tuple(int(n) for n in config.fleet_sizes),
        routers=tuple(config.routers),
        policies=_policy_roster(),
        trace=TraceSpec(
            name=f"exp(rate={config.exp_rate})",
            dist=Exponential(config.exp_rate),
            duration=config.duration,
        ),
        n_traces=config.n_traces,
        seed=config.seed,
        seed_stride=config.seed_stride,
        service_time=config.service_time,
        faults=faults,
        failover=failover,
        overload=overload,
    )


def run_fleet_sweep(config: FleetConfig = FleetConfig()) -> FleetSweepResult:
    """Run the full grid; deterministic given the config (any job count)."""
    runner = FleetSweepRunner(
        chunk_size=config.chunk_size, n_jobs=config.n_jobs,
        checkpoint=config.checkpoint,
        verify_fraction=config.verify_fraction,
        diagnostics_dir=config.diagnostics_dir,
    )
    return runner.run(build_spec(config))
