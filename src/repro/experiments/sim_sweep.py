"""SIM-SWEEP: scenario-diverse cross-policy sweep on the event simulator.

The policy-table experiment (EXT-POLICY) compares the roster on *one*
device and *one* trace per workload family.  This experiment is what the
vectorized event-sim runtime opens up: the full
(device x trace family x policy) grid with many seeded trace
replications per cell, so every comparison carries a bootstrap CI
instead of a single-draw point estimate.  Cells fan across worker
processes via :class:`~repro.runtime.SimSweepRunner`; stateless policies
run on the busy-period kernel and the stateful adaptive/predictive arms
ride the lock-step cross-replication engine over each seed chunk.
"""

from __future__ import annotations

from ..baselines import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    OracleShutdown,
    PredictiveShutdown,
)
from ..device import get_preset
from ..runtime import PolicySpec, SimSweepResult, SimSweepRunner, SimSweepSpec, TraceSpec
from ..workload import Exponential, Pareto
from .config import SimSweepConfig


def _policy_roster() -> tuple:
    """The sweep's policy arms; targets resolve per device at run time."""
    return (
        PolicySpec("always_on", AlwaysOn()),
        PolicySpec("greedy", GreedySleep()),
        PolicySpec("timeout(Tbe)", FixedTimeout()),
        PolicySpec("adaptive", AdaptiveTimeout(initial_timeout=1.0)),
        PolicySpec("predictive", PredictiveShutdown(smoothing=0.5)),
        PolicySpec("oracle", OracleShutdown(), oracle=True),
    )


def build_spec(config: SimSweepConfig = SimSweepConfig()) -> SimSweepSpec:
    """The :class:`~repro.runtime.SimSweepSpec` this config realizes."""
    for name in config.devices:
        get_preset(name)  # fail fast on unknown presets
    return SimSweepSpec(
        devices=tuple(config.devices),
        traces=(
            TraceSpec(
                name=f"exp(rate={config.exp_rate})",
                dist=Exponential(config.exp_rate),
                duration=config.duration,
            ),
            TraceSpec(
                name=f"pareto(a={config.pareto_alpha})",
                dist=Pareto(config.pareto_alpha, config.pareto_xm),
                duration=config.duration,
            ),
        ),
        policies=_policy_roster(),
        n_traces=config.n_traces,
        seed=config.seed,
        seed_stride=config.seed_stride,
        service_time=config.service_time,
    )


def run_sim_sweep(config: SimSweepConfig = SimSweepConfig()) -> SimSweepResult:
    """Run the full grid; deterministic given the config (any job count)."""
    runner = SimSweepRunner(
        chunk_size=config.chunk_size, n_jobs=config.n_jobs,
        verify_fraction=config.verify_fraction,
        diagnostics_dir=config.diagnostics_dir,
    )
    return runner.run(build_spec(config))
