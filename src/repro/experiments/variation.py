"""CLAIM-VAR reproduction: "tolerant to small scale variations".

The paper asserts that Q-DPM's most attractive extra property is
tolerance to the small, continuous parameter drift real systems exhibit.
Protocol: modulate the arrival rate sinusoidally around a base value
(chosen on the policy-structure boundary so the drift crosses decision
boundaries) and compare

- a *frozen* optimal policy, solved once for the base rate (what a
  non-adaptive model-based deployment would run), against
- Q-DPM, pre-trained at the base rate and left learning during the drift.

Both arms route through the unified :class:`~repro.runtime.SweepRunner`
on the batched engine — the frozen policy as a vectorized fixed-policy
rollout, Q-DPM as a lock-step batch of learners with a warmup phase at
the base rate.  ``config.sweep.n_seeds > 1`` turns every cell into a
mean +- bootstrap CI.

Measured finding (recorded in EXPERIMENTS.md): *tolerance* holds in the
graceful-degradation sense — Q-DPM's payoff moves only slightly as the
amplitude grows, and its gap to the frozen policy stays a roughly
constant learning/exploration tax rather than compounding.  It does
*not* overtake the frozen optimal policy at these drift sizes: a frozen
optimal policy is itself surprisingly robust (symmetric drift averages
out), which the paper's qualitative claim glosses over.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..analysis import CI, format_table
from ..device import get_preset
from ..env import build_dpm_model
from ..runtime import RolloutSpec, SweepRunner, merge_verification_blocks
from ..workload import ConstantRate, SinusoidalRate
from .config import VariationConfig


@dataclass
class VariationRow:
    """Result at one drift amplitude."""

    amplitude: float
    frozen_reward: float     #: mean reward/slot of the frozen optimal policy
    qdpm_reward: float       #: mean reward/slot of continuously learning Q-DPM
    frozen_saving: float
    qdpm_saving: float
    frozen_ci: Optional[CI] = None   #: across-seed CI (n_seeds > 1)
    qdpm_ci: Optional[CI] = None

    @property
    def reward_gap(self) -> float:
        """Q-DPM advantage (positive = Q-DPM better)."""
        return self.qdpm_reward - self.frozen_reward


@dataclass
class VariationResult:
    """Sweep over drift amplitudes."""

    config: VariationConfig
    rows: List[VariationRow]
    execution: Optional[dict] = None   #: merged sweep verification metadata

    def render(self) -> str:
        multi = self.rows and self.rows[0].qdpm_ci is not None
        headers = [
            "amplitude", "frozen reward", "Q-DPM reward", "gap",
            "frozen saving", "Q-DPM saving",
        ]
        if multi:
            headers += ["frozen +-95", "Q-DPM +-95"]
        rows = []
        for r in self.rows:
            row = [
                r.amplitude, round(r.frozen_reward, 4), round(r.qdpm_reward, 4),
                round(r.reward_gap, 4), round(r.frozen_saving, 4),
                round(r.qdpm_saving, 4),
            ]
            if multi:
                row += [
                    round(r.frozen_ci.half_width, 4),
                    round(r.qdpm_ci.half_width, 4),
                ]
            rows.append(row)
        title = (
            "CLAIM-VAR: frozen optimal policy vs continuously-learning "
            "Q-DPM under sinusoidal rate drift"
        )
        if multi:
            title += f" ({self.config.sweep.n_seeds} seeds)"
        return format_table(headers, rows, title=title)


def run_variation(config: VariationConfig = VariationConfig()) -> VariationResult:
    """Run the drift-tolerance sweep."""
    device = get_preset(config.env.device)
    frozen_model = build_dpm_model(
        device,
        arrival_rate=config.base_rate,
        slot_length=config.env.slot_length,
        queue_capacity=config.env.queue_capacity,
        p_serve=config.env.p_serve,
        perf_weight=config.env.perf_weight,
        loss_penalty=config.env.loss_penalty,
    )
    frozen_policy = frozen_model.solve(
        config.env.discount, "policy_iteration"
    ).policy

    runner = SweepRunner(
        batch_size=config.sweep.batch_size, n_jobs=config.sweep.n_jobs,
        verify_fraction=config.sweep.verify_fraction,
        diagnostics_dir=config.sweep.diagnostics_dir,
    )
    seeds = config.seeds()
    multi = len(seeds) > 1

    rows: List[VariationRow] = []
    executions: List[Optional[dict]] = []
    for amplitude in config.amplitudes:
        schedule = SinusoidalRate(config.base_rate, amplitude, config.period)
        # one whole-horizon window: mean reward/slot per seed, exactly as
        # the scalar protocol accumulated it.  env streams are seeded
        # ``seed + 100`` (frozen and Q-DPM arms share the workload
        # realization), the Q-DPM warmup phase at ``seed`` — the scalar
        # experiment's seed arithmetic.
        frozen_spec = RolloutSpec.from_env_config(
            config.env,
            schedule,
            config.n_slots,
            record_every=config.n_slots,
            policy=frozen_policy,
            env_seed_offset=100,
        )
        frozen_sweep = runner.run_many(frozen_spec, seeds)

        qdpm_spec = replace(
            frozen_spec,
            policy=None,
            learning_rate=config.learning_rate,
            epsilon=config.epsilon,
            warmup_schedule=ConstantRate(config.base_rate),
            warmup_slots=config.warmup_slots,
            warmup_seed_offset=0,
        )
        qdpm_sweep = runner.run_many(qdpm_spec, seeds)
        executions.extend([
            getattr(frozen_sweep, "execution", None),
            getattr(qdpm_sweep, "execution", None),
        ])

        rows.append(
            VariationRow(
                amplitude=amplitude,
                frozen_reward=float(frozen_sweep.rewards().mean()),
                qdpm_reward=float(qdpm_sweep.rewards().mean()),
                frozen_saving=float(frozen_sweep.savings().mean()),
                qdpm_saving=float(qdpm_sweep.savings().mean()),
                frozen_ci=frozen_sweep.reward_ci() if multi else None,
                qdpm_ci=qdpm_sweep.reward_ci() if multi else None,
            )
        )
    merged = merge_verification_blocks(executions)
    return VariationResult(
        config=config, rows=rows,
        execution={"verification": merged} if merged else None,
    )
