"""CLAIM-VAR reproduction: "tolerant to small scale variations".

The paper asserts that Q-DPM's most attractive extra property is
tolerance to the small, continuous parameter drift real systems exhibit.
Protocol: modulate the arrival rate sinusoidally around a base value
(chosen on the policy-structure boundary so the drift crosses decision
boundaries) and compare

- a *frozen* optimal policy, solved once for the base rate (what a
  non-adaptive model-based deployment would run), against
- Q-DPM, pre-trained at the base rate and left learning during the drift.

Measured finding (recorded in EXPERIMENTS.md): *tolerance* holds in the
graceful-degradation sense — Q-DPM's payoff moves only slightly as the
amplitude grows, and its gap to the frozen policy stays a roughly
constant learning/exploration tax rather than compounding.  It does
*not* overtake the frozen optimal policy at these drift sizes: a frozen
optimal policy is itself surprisingly robust (symmetric drift averages
out), which the paper's qualitative claim glosses over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis import format_table
from ..core import QDPM
from ..device import get_preset
from ..env import SlottedDPMEnv, build_dpm_model
from ..mdp import DeterministicPolicy
from ..workload import ConstantRate, SinusoidalRate
from .config import VariationConfig


@dataclass
class VariationRow:
    """Result at one drift amplitude."""

    amplitude: float
    frozen_reward: float     #: mean reward/slot of the frozen optimal policy
    qdpm_reward: float       #: mean reward/slot of continuously learning Q-DPM
    frozen_saving: float
    qdpm_saving: float

    @property
    def reward_gap(self) -> float:
        """Q-DPM advantage (positive = Q-DPM better)."""
        return self.qdpm_reward - self.frozen_reward


@dataclass
class VariationResult:
    """Sweep over drift amplitudes."""

    config: VariationConfig
    rows: List[VariationRow]

    def render(self) -> str:
        headers = [
            "amplitude", "frozen reward", "Q-DPM reward", "gap",
            "frozen saving", "Q-DPM saving",
        ]
        rows = [
            [
                r.amplitude, round(r.frozen_reward, 4), round(r.qdpm_reward, 4),
                round(r.reward_gap, 4), round(r.frozen_saving, 4),
                round(r.qdpm_saving, 4),
            ]
            for r in self.rows
        ]
        return format_table(
            headers, rows,
            title="CLAIM-VAR: frozen optimal policy vs continuously-learning "
                  "Q-DPM under sinusoidal rate drift",
        )


def _run_policy(env: SlottedDPMEnv, policy: DeterministicPolicy,
                n_slots: int) -> tuple:
    """Execute a fixed policy; returns (mean reward, saving ratio)."""
    total_reward = 0.0
    for _ in range(n_slots):
        state = env.state
        action = policy(state)
        if action not in env.allowed_actions(state):
            action = env.allowed_actions(state)[0]
        _, reward, _ = env.step(action)
        total_reward += reward
    return total_reward / n_slots, env.energy_saving_ratio()


def _pretrain(config: VariationConfig) -> QDPM:
    """Q-DPM trained to steady state at the base rate."""
    device = get_preset(config.env.device)
    env = SlottedDPMEnv(
        device,
        ConstantRate(config.base_rate),
        slot_length=config.env.slot_length,
        queue_capacity=config.env.queue_capacity,
        p_serve=config.env.p_serve,
        perf_weight=config.env.perf_weight,
        loss_penalty=config.env.loss_penalty,
        seed=config.seed,
    )
    controller = QDPM(
        env,
        discount=config.env.discount,
        learning_rate=config.learning_rate,
        epsilon=config.epsilon,
        seed=config.seed + 1,
    )
    controller.run(config.warmup_slots, record_every=config.warmup_slots)
    return controller


def run_variation(config: VariationConfig = VariationConfig()) -> VariationResult:
    """Run the drift-tolerance sweep."""
    device = get_preset(config.env.device)
    frozen_model = build_dpm_model(
        device,
        arrival_rate=config.base_rate,
        slot_length=config.env.slot_length,
        queue_capacity=config.env.queue_capacity,
        p_serve=config.env.p_serve,
        perf_weight=config.env.perf_weight,
        loss_penalty=config.env.loss_penalty,
    )
    frozen_policy = frozen_model.solve(
        config.env.discount, "policy_iteration"
    ).policy

    rows: List[VariationRow] = []
    for amplitude in config.amplitudes:
        schedule = SinusoidalRate(config.base_rate, amplitude, config.period)

        env_frozen = SlottedDPMEnv(
            device,
            schedule,
            slot_length=config.env.slot_length,
            queue_capacity=config.env.queue_capacity,
            p_serve=config.env.p_serve,
            perf_weight=config.env.perf_weight,
            loss_penalty=config.env.loss_penalty,
            seed=config.seed + 100,
        )
        frozen_reward, frozen_saving = _run_policy(
            env_frozen, frozen_policy, config.n_slots
        )

        controller = _pretrain(config)
        env_q = SlottedDPMEnv(
            device,
            schedule,
            slot_length=config.env.slot_length,
            queue_capacity=config.env.queue_capacity,
            p_serve=config.env.p_serve,
            perf_weight=config.env.perf_weight,
            loss_penalty=config.env.loss_penalty,
            seed=config.seed + 100,  # same workload realization
        )
        controller.env = env_q
        controller.observation = type(controller.observation)(env_q)
        hist = controller.run(config.n_slots, record_every=config.n_slots)
        qdpm_reward = float(hist.reward.mean())
        qdpm_saving = env_q.energy_saving_ratio()

        rows.append(
            VariationRow(
                amplitude=amplitude,
                frozen_reward=frozen_reward,
                qdpm_reward=qdpm_reward,
                frozen_saving=frozen_saving,
                qdpm_saving=qdpm_saving,
            )
        )
    return VariationResult(config=config, rows=rows)
