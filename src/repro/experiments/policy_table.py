"""EXT-POLICY: cross-policy comparison on the event-driven simulator.

The standard table of the DPM literature, giving the figure reproductions
their context: every classic policy family on the same realistic device
and traces, reporting power, saving (normalized to the always-on policy's
measured power), latency, and shutdown quality.  Two workload families:
memoryless (exponential) and heavy-tailed (Pareto) idle behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis import format_table
from ..baselines import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    OracleShutdown,
    PredictiveShutdown,
)
from ..device import get_preset
from ..runtime import get_executor, simulate_trace
from ..sim import SimReport
from ..workload import Exponential, Pareto, Trace, renewal_trace
from .config import PolicyTableConfig


@dataclass
class PolicyTableRow:
    """One (policy, trace) cell of the comparison."""

    policy: str
    trace: str
    mean_power: float
    saving_vs_always_on: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    n_shutdowns: int
    n_wrong_shutdowns: int


@dataclass
class PolicyTableResult:
    """The full policy x workload grid."""

    config: PolicyTableConfig
    rows: List[PolicyTableRow]

    def render(self) -> str:
        headers = [
            "trace", "policy", "power (W)", "saving", "latency (s)",
            "p50 lat", "p95 lat", "p99 lat", "shutdowns", "wrong",
        ]
        rows = [
            [
                r.trace, r.policy, round(r.mean_power, 4),
                round(r.saving_vs_always_on, 4), round(r.mean_latency, 3),
                round(r.p50_latency, 3), round(r.p95_latency, 3),
                round(r.p99_latency, 3), r.n_shutdowns, r.n_wrong_shutdowns,
            ]
            for r in self.rows
        ]
        return format_table(
            headers, rows,
            title="EXT-POLICY: event-driven policy comparison "
                  f"(device={self.config.device})",
        )


def _policies(config: PolicyTableConfig, break_even: float):
    """The policy roster, oracle last (it needs the oracle context)."""
    return [
        (AlwaysOn(), False),
        (GreedySleep(), False),
        (FixedTimeout(), False),  # timeout = break-even (2-competitive)
        (FixedTimeout(config.timeout_scale_alt * break_even), False),
        (AdaptiveTimeout(initial_timeout=break_even), False),
        (PredictiveShutdown(smoothing=0.5), False),
        (OracleShutdown(), True),
    ]


def _policy_label(policy, break_even: float, config: PolicyTableConfig) -> str:
    if isinstance(policy, FixedTimeout):
        timeout = policy._timeout  # noqa: SLF001 - reporting only
        if timeout is None:
            return f"timeout(Tbe={break_even:.2f}s)"
        return f"timeout({timeout:.2f}s)"
    return policy.name


def _simulate_cell(config: PolicyTableConfig, trace: Trace, policy,
                   oracle: bool) -> SimReport:
    """One (policy, trace) simulation — the grid's shardable work unit.

    Module-level and built from picklable values only, so the executor
    can ship cells to worker processes; the simulation itself is
    deterministic given the trace, so sharding never changes the table.
    Routes through :func:`~repro.runtime.simulate_trace`, so the
    stateless roster rides the vectorized busy-period kernel while the
    adaptive/predictive arms keep the scalar event loop.
    """
    return simulate_trace(
        get_preset(config.device), policy, trace,
        service_time=config.service_time, oracle=oracle,
    )


def run_policy_table(
    config: PolicyTableConfig = PolicyTableConfig(),
) -> PolicyTableResult:
    """Run the full grid; deterministic given the config seed.

    ``config.n_jobs > 1`` shards the (policy x trace) cells — including
    the per-trace always-on normalization runs — across worker
    processes; cell results are independent, so the table is identical
    at any job count.
    """
    device = get_preset(config.device)
    deepest = device.deepest_state()
    break_even = device.break_even_time(deepest, device.initial_state)

    rng = np.random.default_rng(config.seed)
    traces: Dict[str, Trace] = {
        f"exp(rate={config.exp_rate})": renewal_trace(
            Exponential(config.exp_rate), config.duration, rng
        ),
        f"pareto(a={config.pareto_alpha})": renewal_trace(
            Pareto(config.pareto_alpha, config.pareto_xm), config.duration, rng
        ),
    }

    # flatten: per trace, one baseline (always-on normalization) cell
    # followed by the policy roster cells, all independent work units
    tasks: List[tuple] = []
    labels: List[tuple] = []  # (trace_name, policy_label or None)
    for trace_name, trace in traces.items():
        tasks.append((config, trace, AlwaysOn(), False))
        labels.append((trace_name, None))
        for policy, oracle in _policies(config, break_even):
            tasks.append((config, trace, policy, oracle))
            labels.append((trace_name, _policy_label(policy, break_even, config)))
    reports = get_executor(config.n_jobs).map(_simulate_cell, tasks)

    rows: List[PolicyTableRow] = []
    base_power = 0.0
    for (trace_name, policy_label), report in zip(labels, reports):
        if policy_label is None:
            # normalize saving to the measured always-on power on this trace
            base_power = report.mean_power
            continue
        saving = (
            1.0 - report.mean_power / base_power if base_power > 0 else 0.0
        )
        rows.append(
            PolicyTableRow(
                policy=policy_label,
                trace=trace_name,
                mean_power=report.mean_power,
                saving_vs_always_on=saving,
                mean_latency=report.mean_latency,
                p50_latency=report.p50_latency,
                p95_latency=report.p95_latency,
                p99_latency=report.p99_latency,
                n_shutdowns=report.n_shutdowns,
                n_wrong_shutdowns=report.n_wrong_shutdowns,
            )
        )
    return PolicyTableResult(config=config, rows=rows)
