"""FIG2 reproduction: "Rapid Response".

Protocol (paper section 3, Fig. 2): temporarily stationary synthetic
input — the arrival rate switches between segments at marked points.
Q-DPM keeps adapting every slot; the model-based adaptive pipeline must
*detect* the change, *re-estimate* the parameter, and *re-optimize* (LP),
paying lag at every switch.  We overlay the windowed payoff curves of
both controllers (payoff = the paper's reinforcement signal; see
:mod:`repro.experiments.fig1_convergence` for why it, and not raw energy
saving, is the comparable axis), draw the per-segment exact optimal
payoff as reference levels, mark the switching points, and quantify the
per-switch response time of each controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..adaptive import (
    AdaptationLog,
    BernoulliCUSUM,
    ModelBasedAdaptiveDPM,
    SlidingWindowEstimator,
)
from ..analysis import CI, SwitchResponse, ascii_chart, switch_responses
from ..device import get_preset
from ..env import SlottedDPMEnv, build_dpm_model
from ..runtime import RolloutSpec, SweepRunner, merge_verification_blocks
from ..workload import PiecewiseConstantRate
from .config import Fig2Config


@dataclass
class Fig2Result:
    """Curves and per-switch analysis of the Fig. 2 reproduction."""

    config: Fig2Config
    slots: np.ndarray
    qdpm_reward: np.ndarray
    mb_reward: np.ndarray
    qdpm_saving: np.ndarray
    mb_saving: np.ndarray
    switch_points: List[int]
    segment_optimal_reward: List[float]   #: exact optimal payoff per segment
    segment_optimal_saving: List[float]
    qdpm_responses: List[SwitchResponse]
    mb_responses: List[SwitchResponse]
    mb_log: AdaptationLog
    n_seeds: int = 1                      #: seeds per controller arm
    qdpm_reward_ci: Optional[CI] = None   #: across-seed Q-DPM payoff CI
    mb_reward_ci: Optional[CI] = None     #: across-seed model-based payoff CI
    execution: Optional[dict] = None      #: merged sweep verification metadata

    def render(self) -> str:
        """ASCII figure matching the paper's Fig. 2 layout."""
        hlines = {
            f"opt(seg{i})": r
            for i, r in enumerate(self.segment_optimal_reward)
        }
        chart = ascii_chart(
            self.slots,
            {"Q-DPM": self.qdpm_reward, "model-based": self.mb_reward},
            vlines=self.switch_points,
            hlines=hlines,
            title="Fig.2 Rapid Response (vertical bars = switching points)",
            y_label="payoff",
        )
        lines = [chart, ""]
        lines.append("per-switch response time (slots to re-enter the band):")
        for q, m in zip(self.qdpm_responses, self.mb_responses):
            q_t = "never" if q.response_slots is None else str(q.response_slots)
            m_t = "never" if m.response_slots is None else str(m.response_slots)
            lines.append(
                f"  switch@{q.switch_slot}: Q-DPM {q_t} vs model-based {m_t} "
                f"(target payoff {q.target:.3f})"
            )
        lines.append(
            f"model-based re-optimizations: {self.mb_log.n_reoptimizations}, "
            f"optimizer wall-clock {self.mb_log.optimize_seconds * 1e3:.1f} ms"
        )
        if self.n_seeds > 1 and self.qdpm_reward_ci is not None:
            lines.append(
                f"payoff across {self.n_seeds} seeds (95% bootstrap CI): "
                f"Q-DPM {self.qdpm_reward_ci} vs "
                f"model-based {self.mb_reward_ci}"
            )
        return "\n".join(lines)


def _segment_optima(config: Fig2Config) -> Tuple[List[float], List[float]]:
    """Exact optimal (payoff, saving) per segment's frozen rate."""
    device = get_preset(config.env.device)
    rewards: List[float] = []
    savings: List[float] = []
    for rate in config.segment_rates:
        model = build_dpm_model(
            device,
            arrival_rate=rate,
            slot_length=config.env.slot_length,
            queue_capacity=config.env.queue_capacity,
            p_serve=config.env.p_serve,
            perf_weight=config.env.perf_weight,
            loss_penalty=config.env.loss_penalty,
        )
        result = model.solve(config.env.discount, "policy_iteration")
        perf = model.evaluate_policy(result.policy)
        rewards.append(perf.average_reward)
        savings.append(perf.energy_saving_ratio)
    return rewards, savings


def _segment_steady_levels(
    slots: np.ndarray,
    series: np.ndarray,
    switch_points: List[int],
    n_slots: int,
    tail_fraction: float = 0.3,
) -> List[float]:
    """Steady payoff level a controller reaches in each post-switch segment
    (mean over the segment's trailing ``tail_fraction`` of records)."""
    targets: List[float] = []
    bounds = list(switch_points) + [n_slots]
    for start, end in zip(switch_points, bounds[1:]):
        tail_start = end - int((end - start) * tail_fraction)
        mask = (slots >= tail_start) & (slots < end)
        targets.append(float(series[mask].mean()) if mask.any() else float("nan"))
    return targets


def _make_env(config: Fig2Config, seed: int) -> SlottedDPMEnv:
    device = get_preset(config.env.device)
    schedule = PiecewiseConstantRate(
        [(config.segment_slots, r) for r in config.segment_rates]
    )
    return SlottedDPMEnv(
        device,
        schedule,
        slot_length=config.env.slot_length,
        queue_capacity=config.env.queue_capacity,
        p_serve=config.env.p_serve,
        perf_weight=config.env.perf_weight,
        loss_penalty=config.env.loss_penalty,
        seed=seed,
    )


def _merged_execution(*sweeps) -> Optional[dict]:
    """One execution block covering every sweep arm, for the CLI summary."""
    merged = merge_verification_blocks(
        [getattr(s, "execution", None) for s in sweeps]
    )
    return {"verification": merged} if merged else None


def run_fig2(config: Fig2Config = Fig2Config()) -> Fig2Result:
    """Run the FIG2 experiment; deterministic given the config seeds.

    Both controller arms route through the unified
    :class:`~repro.runtime.SweepRunner`: the Q-DPM seeds train lock-step
    on the batched engine, the model-based pipeline (stateful estimator +
    CUSUM + LP re-optimizer — inherently scalar) uses the runner's
    per-seed fallback.  With ``config.sweep.n_seeds > 1`` the plotted
    curves are across-seed means.
    """
    n_slots = config.segment_slots * len(config.segment_rates)
    schedule = PiecewiseConstantRate(
        [(config.segment_slots, r) for r in config.segment_rates]
    )
    switch_points = schedule.switch_points(n_slots)
    opt_rewards, opt_savings = _segment_optima(config)

    spec = RolloutSpec.from_env_config(
        config.env,
        schedule,
        n_slots,
        record_every=config.record_every,
        learning_rate=config.learning_rate,
        epsilon=config.epsilon,
    )
    seeds = config.seeds()
    runner = SweepRunner(
        batch_size=config.sweep.batch_size, n_jobs=config.sweep.n_jobs,
        verify_fraction=config.sweep.verify_fraction,
        diagnostics_dir=config.sweep.diagnostics_dir,
    )

    # --- Q-DPM (batched) -----------------------------------------------
    sweep_q = runner.run_many(spec, seeds)

    # --- model-based adaptive (scalar fallback) ------------------------
    controllers: List[ModelBasedAdaptiveDPM] = []

    def mb_factory(seed: int) -> ModelBasedAdaptiveDPM:
        mb = ModelBasedAdaptiveDPM(
            _make_env(config, seed),  # identical workload seed per arm
            discount=config.env.discount,
            solver=config.mb_solver,
            estimator=SlidingWindowEstimator(config.mb_window),
            detector=BernoulliCUSUM(
                config.mb_initial_rate,
                drift=config.mb_cusum_drift,
                threshold=config.mb_cusum_threshold,
            ),
            min_samples=config.mb_min_samples,
            freeze_slots=config.mb_freeze_slots,
            initial_rate=config.mb_initial_rate,
        )
        controllers.append(mb)
        return mb

    sweep_m = runner.run_many(spec, seeds, controller_factory=mb_factory)

    multi = len(seeds) > 1
    hist_q = sweep_q.mean_history() if multi else sweep_q.runs[0].history
    hist_m = sweep_m.mean_history() if multi else sweep_m.runs[0].history

    n = min(len(hist_q.slots), len(hist_m.slots))
    slots = hist_q.slots[:n]

    # Response targets are *self-relative*: each controller must return to
    # its own steady level for the new segment.  Using the theoretical
    # optimum would penalize Q-DPM's permanent exploration tax (a constant
    # offset, not a tracking lag) and hand the non-exploring model-based
    # controller a free win — the question here is tracking *speed*.
    q_targets = _segment_steady_levels(
        slots, hist_q.reward[:n], switch_points, n_slots
    )
    m_targets = _segment_steady_levels(
        slots, hist_m.reward[:n], switch_points, n_slots
    )
    q_resp = switch_responses(
        slots, hist_q.reward[:n], switch_points, q_targets,
        config.tolerance, config.sustain,
    )
    m_resp = switch_responses(
        slots, hist_m.reward[:n], switch_points, m_targets,
        config.tolerance, config.sustain,
    )
    return Fig2Result(
        config=config,
        slots=slots,
        qdpm_reward=hist_q.reward[:n],
        mb_reward=hist_m.reward[:n],
        qdpm_saving=hist_q.saving_ratio[:n],
        mb_saving=hist_m.saving_ratio[:n],
        switch_points=list(switch_points),
        segment_optimal_reward=opt_rewards,
        segment_optimal_saving=opt_savings,
        qdpm_responses=q_resp,
        mb_responses=m_resp,
        mb_log=controllers[0].log,
        n_seeds=len(seeds),
        qdpm_reward_ci=sweep_q.reward_ci() if multi else None,
        mb_reward_ci=sweep_m.reward_ci() if multi else None,
        execution=_merged_execution(sweep_q, sweep_m),
    )
