"""GRID: scenario-grid comparison on the sharded batched runtime.

The figure experiments each pin one scenario; the grid runner opens the
product space — every (arrival rate, device preset, horizon, controller)
cell as a multi-seed sweep with bootstrap CIs, the full cell x chunk
matrix fanned across worker processes.  The table answers the
deployment-shaped question the single figures cannot: *where* (which
rate regimes, which devices) does the learning controller close the gap
to the per-cell optimal policy, and where does the exploration tax bite.
"""

from __future__ import annotations

from ..runtime import GridResult, GridRunner, GridSpec, RolloutSpec
from ..workload import ConstantRate
from .config import GridConfig


def run_grid(config: GridConfig = GridConfig()) -> GridResult:
    """Run the scenario grid; deterministic given the config seeds.

    The returned :class:`~repro.runtime.GridResult` renders the
    comparison table; results are bit-identical for any
    ``(sweep.batch_size, sweep.n_jobs)`` combination.
    """
    base = RolloutSpec.from_env_config(
        config.env,
        ConstantRate(config.rates[0]),
        int(config.horizons[0]),
        record_every=config.record_every,
        learning_rate=config.learning_rate,
        epsilon=config.epsilon,
    )
    grid = GridSpec(
        base=base,
        rates=tuple(config.rates),
        devices=tuple(config.devices),
        horizons=tuple(config.horizons),
        controllers=tuple(config.controllers),
    )
    runner = GridRunner(
        batch_size=config.sweep.batch_size, n_jobs=config.sweep.n_jobs
    )
    return runner.run(grid, config.seeds())
