"""Fleet-scale multi-device simulation with request dispatch.

The single-device reproduction answers "how should one device sleep?";
this subsystem answers it for a cluster: N replicas of one device model
share a high-rate arrival stream behind a :class:`Dispatcher`, whose
:class:`Router` decides which replica serves each request.  The
resulting per-device sub-traces run on the existing single-device
engines (the vectorized busy-period kernel of
:mod:`repro.runtime.eventsim`, scalar event-loop fallback), and a
:class:`FleetReport` folds the per-device results into fleet energy,
per-device residency, and exact tail latency over the merged completion
stream.  :class:`FleetSweepRunner` fans
(fleet size x router x policy x trace seed) grids across the executor
layer with bootstrap-CI aggregation — the `fleet-sweep` CLI entry.

Layering mirrors the rest of the repo: every router is vectorized and
pinned bit-identical to its scalar reference loop — stateless routers
via closed-form ``route_batch``, queue-aware routers via the epoch-
advance ``route_step_batch`` (dense per-device backlog arrays advanced
one arrival per round) — and the sweep flattens each cell's
(seed x device) sub-traces into a single lock-step kernel call
(:func:`run_fleet_batch`).
"""

from .dispatch import (
    FAILOVER_POLICIES,
    ROUTERS,
    SHED_BUDGET,
    SHED_DEADLINE,
    SHED_NONE,
    BreakerConfig,
    Dispatcher,
    FailoverConfig,
    FailoverOutcome,
    JoinShortestQueueRouter,
    OverloadConfig,
    OverloadOutcome,
    PowerAwareRouter,
    RandomRouter,
    RetryBudgetConfig,
    RouteContext,
    Router,
    RoundRobinRouter,
    make_router,
    route_with_failover,
    route_with_failover_step,
    route_with_overload,
    route_with_overload_step,
)
from .evaluate import ENGINES, run_fleet, run_fleet_batch
from .report import FleetReport, build_fleet_report
from .sweep import (
    FAULT_SEED_OFFSET,
    ROUTE_SEED_OFFSET,
    FleetCellResult,
    FleetSweepResult,
    FleetSweepRunner,
    FleetSweepSpec,
    run_fleet_chunk,
)

__all__ = [
    "Router",
    "RouteContext",
    "RoundRobinRouter",
    "RandomRouter",
    "JoinShortestQueueRouter",
    "PowerAwareRouter",
    "ROUTERS",
    "make_router",
    "Dispatcher",
    "FailoverConfig",
    "FailoverOutcome",
    "FAILOVER_POLICIES",
    "route_with_failover",
    "route_with_failover_step",
    "BreakerConfig",
    "RetryBudgetConfig",
    "OverloadConfig",
    "OverloadOutcome",
    "SHED_NONE",
    "SHED_DEADLINE",
    "SHED_BUDGET",
    "route_with_overload",
    "route_with_overload_step",
    "ENGINES",
    "run_fleet",
    "run_fleet_batch",
    "FleetReport",
    "build_fleet_report",
    "FleetSweepSpec",
    "FleetCellResult",
    "FleetSweepResult",
    "FleetSweepRunner",
    "run_fleet_chunk",
    "ROUTE_SEED_OFFSET",
    "FAULT_SEED_OFFSET",
]
