"""Request dispatch: route one arrival stream across N device replicas.

The paper's DPM problem is posed per device; a fleet serves one
high-rate arrival :class:`~repro.workload.Trace` with N replicas of the
same power-managed device behind a dispatcher.  The dispatcher owns the
(virtual) global clock: it walks the arrival stream once, assigns every
request to a device, and hands each device its sub-trace — the devices
then run the ordinary single-device simulation (scalar event loop or
vectorized busy-period kernel) on their own streams.

Routers mirror the repo's stateless/stateful split everywhere else:

- **Stateless** routers (:class:`RoundRobinRouter`,
  :class:`RandomRouter`) are pure functions of the request index (plus a
  routing RNG stream), so :meth:`Router.route_batch` partitions the
  whole trace with NumPy ops; the scalar :meth:`Router.route` loop is the
  reference semantics and the two are pinned bit-identical in tests.
- **Queue-aware** routers (:class:`JoinShortestQueueRouter`,
  :class:`PowerAwareRouter`) depend on the evolving per-device backlog,
  so they cannot decide all requests at once — but they *can* advance
  the whole fleet one routing epoch (one arrival) per round over dense
  per-device arrays.  :meth:`Router.route_step_batch` is that path,
  the routing analogue of the lock-step
  :func:`~repro.runtime.eventsim.run_step_batched` engine: queue
  lengths and last-completion times live in ``(N,)`` arrays, settling
  pops a single completion heap (amortized one pop per request instead
  of an O(N) per-device walk), and each epoch's choice is a handful of
  whole-fleet array ops.  It is pinned bit-identical to the scalar
  :meth:`Router.route` reference, which remains the semantics of
  record.

Queue-aware routing uses the *dispatcher-level* service model: FIFO
per-device backlog from arrival times and service demands, ignoring DPM
wake-up delays (the dispatcher does not know each device's power state
ahead of simulation; a router that did would couple routing to policy
internals).  :class:`PowerAwareRouter` approximates power state from the
same backlog picture: a device that is busy, or idle for less than an
awake window, is presumed still awake.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from ..device import PowerStateMachine
from ..sim.simulator import resolve_demands
from ..workload.faults import FaultSchedule, no_faults, resolve_fault_schedule
from ..workload.trace import Trace


@dataclass(frozen=True)
class RouteContext:
    """Everything a router may consult while assigning one trace.

    Attributes
    ----------
    arrivals:
        Absolute request arrival times (sorted, one per request).
    demands:
        Resolved per-request service demands (same length), via
        :func:`~repro.sim.simulator.resolve_demands` — the service model
        queue-aware routers plan against.
    n_devices:
        Fleet size; assignments must land in ``[0, n_devices)``.
    device:
        The replicated device model (for break-even style constants).
    rng:
        Routing randomness stream, freshly seeded per dispatch so a
        dispatch is a pure function of ``(trace, seed)``.
    """

    arrivals: np.ndarray
    demands: np.ndarray
    n_devices: int
    device: PowerStateMachine
    rng: np.random.Generator


class Router(ABC):
    """Assignment policy of the dispatcher."""

    #: short name used in report tables and the CLI registry
    name: str = "router"

    @abstractmethod
    def route(self, ctx: RouteContext) -> np.ndarray:
        """Reference semantics: one pass over the requests, one
        assignment per request (int64 array in ``[0, n_devices)``)."""

    def route_batch(self, ctx: RouteContext) -> Optional[np.ndarray]:
        """Vectorized assignments, or None.

        Opt-in fast path mirroring
        :meth:`~repro.sim.policy_api.EventPolicy.decide_batch`: only a
        router whose decisions are independent of the evolving queue
        state may implement it, and it must reproduce :meth:`route`
        bit-for-bit (pinned in tests/test_fleet_dispatch.py).
        """
        return None

    def route_step_batch(self, ctx: RouteContext) -> Optional[np.ndarray]:
        """Epoch-advance vectorized assignments, or None.

        Second opt-in fast path, mirroring
        :meth:`~repro.sim.policy_api.EventPolicy.decide_step_batch`: a
        queue-aware router advances dense per-device backlog arrays one
        routing epoch (one arrival) per round, so each request costs a
        few whole-fleet array ops instead of an O(N) Python walk over
        the devices.  It must reproduce :meth:`route` bit-for-bit
        (pinned in tests/test_fleet_dispatch.py).  Consulted by the
        dispatcher only after :meth:`route_batch` declined.
        """
        return None

    # ------------------------------------------------------------------ #
    # per-decision form (the failure-aware engines' router interface)
    # ------------------------------------------------------------------ #

    def begin_route(self, ctx: RouteContext) -> dict:
        """Fresh per-trace decision state for :meth:`decide_one`.

        The failure-aware engines own the backlog (they must book
        retried requests at their delayed dispatch instants), so this
        state carries only what the router itself threads between
        decisions — a round-robin cursor, a resolved awake window.
        """
        return {}

    def decide_one(
        self,
        state: dict,
        queue_len: np.ndarray,
        last_completion: np.ndarray,
        now: float,
        ctx: RouteContext,
        alive: Optional[np.ndarray] = None,
    ) -> int:
        """One routing decision at instant ``now``.

        This is the router's semantics factored to a single request so
        the failure-aware engines (scalar reference and vectorized
        epoch-advance) can interleave decisions with retries; with
        ``alive=None`` a full pass over a trace must reproduce
        :meth:`route` choice for choice (pinned in
        tests/test_fleet_faults.py via the no-fault schedule).

        ``alive`` is the live/dead mask of the fleet at ``now``: when
        given (never all-False), the router must choose its best *live*
        device — the mask-aware ranking failover falls back on.
        ``queue_len`` / ``last_completion`` are the dispatcher-level
        backlog views at ``now`` (post-settle), whichever backlog
        structure the engine maintains.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement decide_one; "
            "failure-aware routing needs the per-decision router form"
        )


class RoundRobinRouter(Router):
    """Cycle through the devices in request order (the classic default)."""

    name = "round_robin"

    def route(self, ctx: RouteContext) -> np.ndarray:
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            out[i] = i % ctx.n_devices
        return out

    def route_batch(self, ctx: RouteContext) -> np.ndarray:
        return np.arange(ctx.arrivals.size, dtype=np.int64) % ctx.n_devices

    def begin_route(self, ctx: RouteContext) -> dict:
        return {"next": 0}

    def decide_one(self, state, queue_len, last_completion, now, ctx,
                   alive=None) -> int:
        choice = state["next"] % ctx.n_devices
        state["next"] += 1
        if alive is None or alive[choice]:
            return choice
        # first live device cyclically after the cursor's pick
        for off in range(1, ctx.n_devices):
            candidate = (choice + off) % ctx.n_devices
            if alive[candidate]:
                return candidate
        return choice  # unreachable: callers never pass an all-dead mask


class RandomRouter(Router):
    """Uniform-random assignment from the routing stream.

    Scalar and batch paths draw from the same generator state; NumPy's
    bounded-integer sampling consumes the stream identically one-at-a-time
    and batched, so the two are bit-identical (and pinned so).
    """

    name = "random"

    def route(self, ctx: RouteContext) -> np.ndarray:
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            out[i] = int(ctx.rng.integers(0, ctx.n_devices))
        return out

    def route_batch(self, ctx: RouteContext) -> np.ndarray:
        return ctx.rng.integers(0, ctx.n_devices, size=ctx.arrivals.size,
                                dtype=np.int64)

    def decide_one(self, state, queue_len, last_completion, now, ctx,
                   alive=None) -> int:
        # one stream draw per decision in either mode; with every device
        # alive the masked draw indexes the identity, so a no-fault pass
        # consumes the stream exactly like route()
        if alive is None:
            return int(ctx.rng.integers(0, ctx.n_devices))
        live = np.flatnonzero(alive)
        return int(live[int(ctx.rng.integers(0, live.size))])


#: settled-prefix length past which :class:`_BacklogTracker` compacts a
#: device's completion list (once the prefix also spans at least half
#: the list, so each compaction frees >= half and stays amortized O(1))
_COMPACT_MIN_SETTLED = 64


class _BacklogTracker:
    """Per-device FIFO backlog under the dispatcher-level service model."""

    def __init__(self, n_devices: int) -> None:
        # per device: completion times of assigned-but-possibly-pending
        # requests (monotone per device, so popping the head suffices)
        self._completions: List[List[float]] = [[] for _ in range(n_devices)]
        self._head: List[int] = [0] * n_devices
        self.last_completion = np.zeros(n_devices)

    def settle(self, now: float) -> None:
        """Drop requests already completed by ``now``.

        Settled completions are compacted away once a device's settled
        prefix is both long and at least half its list — without the
        compaction the lists grow O(n_requests) over a long trace even
        though only the unsettled tail ever matters again.
        """
        for d, comps in enumerate(self._completions):
            head = self._head[d]
            while head < len(comps) and comps[head] <= now:
                head += 1
            if head >= _COMPACT_MIN_SETTLED and head * 2 >= len(comps):
                del comps[:head]
                head = 0
            self._head[d] = head

    def queue_len(self, d: int) -> int:
        """Requests of device ``d`` still in queue/service (post-settle)."""
        return len(self._completions[d]) - self._head[d]

    def assign(self, d: int, now: float, demand: float) -> None:
        """Book one request on device ``d`` arriving at ``now``."""
        start = max(now, float(self.last_completion[d]))
        done = start + demand
        self._completions[d].append(done)
        self.last_completion[d] = done


class _DenseBacklog:
    """Dense-array twin of :class:`_BacklogTracker` for the epoch path.

    Same service model, different data layout: queue lengths and last
    completion times live in ``(N,)`` arrays, and settling pops one
    completion min-heap shared by all devices instead of walking every
    device's list per request — amortized one heap pop per request over
    a whole trace.  Arithmetic is kept operation-for-operation identical
    to the scalar tracker (``max`` then ``+`` on Python floats), so the
    booked completion times — and therefore every downstream comparison
    — are bit-identical.
    """

    def __init__(self, n_devices: int) -> None:
        self.last_completion = np.zeros(n_devices)
        self.queue_len = np.zeros(n_devices, dtype=np.int64)
        self._heap: List[Tuple[float, int]] = []

    def settle(self, now: float) -> None:
        """Drop requests already completed by ``now`` (all devices)."""
        heap = self._heap
        queue_len = self.queue_len
        while heap and heap[0][0] <= now:
            queue_len[heapq.heappop(heap)[1]] -= 1

    def assign(self, d: int, now: float, demand: float) -> None:
        """Book one request on device ``d`` arriving at ``now``."""
        start = max(now, float(self.last_completion[d]))
        done = start + demand
        self.last_completion[d] = done
        self.queue_len[d] += 1
        heapq.heappush(self._heap, (done, d))


class JoinShortestQueueRouter(Router):
    """Send each request to the device with the fewest pending requests.

    The classic latency-oriented router: queue length is measured at the
    request's arrival instant under the dispatcher-level service model;
    ties break to the lowest device index (deterministic).
    """

    name = "jsq"

    def route(self, ctx: RouteContext) -> np.ndarray:
        tracker = _BacklogTracker(ctx.n_devices)
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            now = float(ctx.arrivals[i])
            tracker.settle(now)
            lengths = [tracker.queue_len(d) for d in range(ctx.n_devices)]
            choice = int(np.argmin(lengths))
            tracker.assign(choice, now, float(ctx.demands[i]))
            out[i] = choice
        return out

    def route_step_batch(self, ctx: RouteContext) -> np.ndarray:
        # inlined _DenseBacklog: jsq only ever reads the argmin of the
        # queue lengths, so last-completion times can stay Python floats
        # (same IEEE doubles, so booked completions stay bit-identical)
        n = int(ctx.arrivals.size)
        heap: List[Tuple[float, int]] = []
        heappush = heapq.heappush
        heappop = heapq.heappop
        queue_len = np.zeros(ctx.n_devices, dtype=np.int64)
        # bound-method argmin: same values, same lowest-index
        # tie-breaking as the scalar list scan
        qargmin = queue_len.argmin
        last = [0.0] * ctx.n_devices
        out = [0] * n
        arrivals = ctx.arrivals.tolist()
        demands = ctx.demands.tolist()
        for i in range(n):
            now = arrivals[i]
            while heap and heap[0][0] <= now:
                queue_len[heappop(heap)[1]] -= 1
            choice = int(qargmin())
            lc = last[choice]
            start = lc if lc > now else now  # == max(now, lc)
            done = start + demands[i]
            last[choice] = done
            queue_len[choice] += 1
            heappush(heap, (done, choice))
            out[i] = choice
        return np.asarray(out, dtype=np.int64)

    def decide_one(self, state, queue_len, last_completion, now, ctx,
                   alive=None) -> int:
        if alive is None:
            return int(np.argmin(queue_len))
        masked = np.where(alive, queue_len, np.iinfo(np.int64).max)
        return int(np.argmin(masked))


class PowerAwareRouter(Router):
    """Prefer devices that are presumably still awake.

    A device counts as *awake* at an arrival when it is busy, or has
    been idle for less than ``awake_window`` seconds (the linger of a
    timeout policy; defaults to the break-even time of the device's
    deepest state, the 2-competitive timeout).  Among awake devices with
    queue room (fewer than ``max_queue`` pending requests) the shortest
    queue wins; when every awake device is full, the most recently used
    *sleeping* device is woken (bounding latency); when the whole fleet
    is asleep, the most recently used device is re-woken — consolidation
    that leaves the other devices' idle periods long enough to amortize
    deep sleeps.  Ties break to the lowest device index.
    """

    name = "power_aware"

    def __init__(
        self,
        awake_window: Optional[float] = None,
        max_queue: int = 4,
    ) -> None:
        if awake_window is not None and awake_window < 0:
            raise ValueError(f"awake_window must be >= 0, got {awake_window}")
        if int(max_queue) < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._awake_window = awake_window
        self._max_queue = int(max_queue)

    def resolve_window(self, device: PowerStateMachine) -> float:
        """The configured awake window, or the device's default."""
        if self._awake_window is not None:
            return float(self._awake_window)
        return device.break_even_time(
            device.deepest_state(), device.initial_state
        )

    def route(self, ctx: RouteContext) -> np.ndarray:
        window = self.resolve_window(ctx.device)
        tracker = _BacklogTracker(ctx.n_devices)
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            now = float(ctx.arrivals[i])
            tracker.settle(now)
            lengths = np.array(
                [tracker.queue_len(d) for d in range(ctx.n_devices)]
            )
            awake = (lengths > 0) | (now - tracker.last_completion < window)
            room = awake & (lengths < self._max_queue)
            if room.any():
                # shortest queue among awake devices with room, index ties
                masked = np.where(room, lengths, np.iinfo(np.int64).max)
                choice = int(np.argmin(masked))
            elif not awake.all():
                # awake devices are full (or none awake): wake the most
                # recently used sleeping device
                recency = np.where(~awake, tracker.last_completion, -np.inf)
                choice = int(np.argmax(recency))
            else:
                # every device awake and full: plain shortest queue
                choice = int(np.argmin(lengths))
            tracker.assign(choice, now, float(ctx.demands[i]))
            out[i] = choice
        return out

    def route_step_batch(self, ctx: RouteContext) -> np.ndarray:
        window = self.resolve_window(ctx.device)
        max_queue = self._max_queue
        n = int(ctx.arrivals.size)
        out = np.empty(n, dtype=np.int64)
        backlog = _DenseBacklog(ctx.n_devices)
        queue_len = backlog.queue_len
        last_completion = backlog.last_completion
        settle = backlog.settle
        assign = backlog.assign
        full = np.iinfo(np.int64).max
        arrivals = ctx.arrivals.tolist()
        demands = ctx.demands.tolist()
        for i in range(n):
            now = arrivals[i]
            settle(now)
            # provably equal to the scalar reference's
            # ``(queue_len > 0) | (now - last_completion < window)``:
            # queue_len > 0 implies an unsettled completion strictly past
            # ``now``, hence last_completion > now, hence (IEEE: x - y == 0
            # iff x == y) now - last_completion < 0 <= window already
            awake = now - last_completion < window
            room = awake & (queue_len < max_queue)
            if room.any():
                choice = int(np.argmin(np.where(room, queue_len, full)))
            elif not awake.all():
                recency = np.where(~awake, last_completion, -np.inf)
                choice = int(np.argmax(recency))
            else:
                choice = int(np.argmin(queue_len))
            assign(choice, now, demands[i])
            out[i] = choice
        return out

    def begin_route(self, ctx: RouteContext) -> dict:
        return {"window": self.resolve_window(ctx.device)}

    def decide_one(self, state, queue_len, last_completion, now, ctx,
                   alive=None) -> int:
        # the route() decision tree with every eligibility test ANDed
        # against the live mask; with alive=None (or all-True) each
        # branch reduces to the unmasked original, so choices — and
        # tie-breaks — match route() exactly
        window = state["window"]
        full = np.iinfo(np.int64).max
        awake = (queue_len > 0) | (now - last_completion < window)
        eligible = alive if alive is not None else np.ones(
            ctx.n_devices, dtype=bool
        )
        room = awake & eligible & (queue_len < self._max_queue)
        if room.any():
            return int(np.argmin(np.where(room, queue_len, full)))
        sleeping = ~awake & eligible
        if sleeping.any():
            # wake the most recently used sleeping (live) device
            return int(np.argmax(np.where(sleeping, last_completion, -np.inf)))
        # every live device awake and full: plain shortest live queue
        return int(np.argmin(np.where(eligible, queue_len, full)))


#: registry used by the sweep layer and the CLI ``--router`` flag
ROUTERS: Dict[str, Type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    RandomRouter.name: RandomRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
    PowerAwareRouter.name: PowerAwareRouter,
}


def make_router(name: str) -> Router:
    """Instantiate a registered router by name (CLI / sweep entry)."""
    try:
        return ROUTERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
        ) from None


#: failover policies accepted by :class:`FailoverConfig`
FAILOVER_POLICIES = ("next_best", "resubmit")


@dataclass(frozen=True)
class FailoverConfig:
    """How the dispatcher absorbs a request routed to a down device.

    The first attempt is always the router's natural, fault-oblivious
    choice (so a no-fault run is bit-identical to plain routing).  When
    that device is down at the dispatch instant, the request backs off
    — capped exponential, delay ``min(base * 2**(k-1), cap)`` before
    retry ``k`` — and is re-decided:

    - ``"next_best"`` (default): the retry decision sees the live/dead
      mask and lands on the router's best *surviving* device —
      health-checked failover.  Requests drop only while the whole
      fleet is down.
    - ``"resubmit"``: the retry goes back to the fault-oblivious router
      (a stale health view): the router may well re-pick the dead
      device, so a long outage can exhaust ``max_retries`` and drop the
      request — the cost of health-blind dispatch, measurable in the
      report's dropped/retry metrics.

    After ``max_retries`` backoffs the request is dropped (assignment
    ``-1``) rather than waiting forever.  ``max_retries=0`` means
    first-failure drop: no backoff ever fires, so the backoff shape is
    not validated in that case (``backoff_cap >= backoff_base`` is only
    meaningful when a retry can actually take a delay).
    """

    policy: str = "next_best"
    max_retries: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 8.0

    def __post_init__(self) -> None:
        if self.policy not in FAILOVER_POLICIES:
            raise ValueError(
                f"unknown failover policy {self.policy!r}; "
                f"choose from {FAILOVER_POLICIES}"
            )
        if int(self.max_retries) < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base <= 0:
            raise ValueError(
                f"backoff_base must be > 0, got {self.backoff_base}"
            )
        if int(self.max_retries) > 0 and self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap must be >= backoff_base, got "
                f"{self.backoff_cap} < {self.backoff_base}"
            )


@dataclass
class FailoverOutcome:
    """Per-request result of one failure-aware routing pass.

    ``assignments[i]`` is the landing device, or ``-1`` for a dropped
    request; ``dispatch_times[i]`` the instant the request finally
    dispatched (its arrival time plus any backoff delays — for dropped
    requests, the instant the dispatcher gave up); ``retries[i]`` the
    number of backoff delays taken.
    """

    arrivals: np.ndarray
    assignments: np.ndarray
    dispatch_times: np.ndarray
    retries: np.ndarray

    @property
    def landed(self) -> np.ndarray:
        """Boolean mask of requests that reached a device."""
        return self.assignments >= 0

    @property
    def n_dropped(self) -> int:
        """Requests that exhausted their retries."""
        return int((~self.landed).sum())

    @property
    def n_retries(self) -> int:
        """Total backoff retries across all requests."""
        return int(self.retries.sum())

    @property
    def latency_inflation(self) -> float:
        """Mean added dispatch delay (seconds) over landed requests."""
        landed = self.landed
        if not landed.any():
            return 0.0
        extra = self.dispatch_times[landed] - self.arrivals[landed]
        return float(extra.mean())


def _backoff_delay(k: int, config: FailoverConfig) -> float:
    """Delay before retry ``k`` (1-based): capped exponential."""
    return min(config.backoff_base * (2.0 ** (k - 1)), config.backoff_cap)


def route_with_failover(
    router: Router,
    ctx: RouteContext,
    faults: FaultSchedule,
    config: FailoverConfig = FailoverConfig(),
) -> FailoverOutcome:
    """Scalar failure-aware reference loop (the semantics of record).

    Walks the requests once; each request is resolved fully — natural
    choice, backoff retries, landing or drop — before the next arrival
    is considered (retried requests book at their *delayed* dispatch
    instants, so a later-arriving request can observe their bookings;
    the dispatcher-level service model already abstracts in-flight
    detail, and inline resolution keeps the pass deterministic and
    single-sweep).  Backlog bookkeeping is the list-walking
    :class:`_BacklogTracker`; arrival-instant masks come from one
    vectorized :meth:`~repro.workload.FaultSchedule.down_mask` sweep
    (bit-equal to per-device :meth:`~repro.workload.FaultSchedule.is_down`
    queries, pinned so in tests) and retry probes use the exact
    point-query :meth:`~repro.workload.FaultSchedule.alive_mask` — the
    vectorized twin :func:`route_with_failover_step` is pinned against
    this loop bit for bit.
    """
    if faults.n_devices != ctx.n_devices:
        raise ValueError(
            f"fault schedule covers {faults.n_devices} devices, "
            f"context has {ctx.n_devices}"
        )
    n = int(ctx.arrivals.size)
    tracker = _BacklogTracker(ctx.n_devices)
    state = router.begin_route(ctx)
    assignments = np.empty(n, dtype=np.int64)
    dispatch_times = np.empty(n)
    retries = np.zeros(n, dtype=np.int64)
    alive_rows = ~faults.down_mask(ctx.arrivals)

    def backlog_view():
        lengths = np.array(
            [tracker.queue_len(d) for d in range(ctx.n_devices)],
            dtype=np.int64,
        )
        return lengths, tracker.last_completion

    for i in range(n):
        now = float(ctx.arrivals[i])
        t = now
        k = 0
        tracker.settle(t)
        alive = alive_rows[i]
        lengths, last = backlog_view()
        choice = router.decide_one(state, lengths, last, t, ctx)
        while not alive[choice]:
            if k == config.max_retries:
                choice = -1
                break
            k += 1
            t = t + _backoff_delay(k, config)
            tracker.settle(t)
            alive = faults.alive_mask(t)
            if config.policy == "resubmit":
                lengths, last = backlog_view()
                choice = router.decide_one(state, lengths, last, t, ctx)
            elif alive.any():
                lengths, last = backlog_view()
                choice = router.decide_one(
                    state, lengths, last, t, ctx, alive=alive
                )
            # whole fleet down under next_best: hold the choice, back off
        if choice >= 0:
            tracker.assign(choice, t, float(ctx.demands[i]))
        assignments[i] = choice
        dispatch_times[i] = t
        retries[i] = k
    return FailoverOutcome(
        arrivals=ctx.arrivals,
        assignments=assignments,
        dispatch_times=dispatch_times,
        retries=retries,
    )


def route_with_failover_step(
    router: Router,
    ctx: RouteContext,
    faults: FaultSchedule,
    config: FailoverConfig = FailoverConfig(),
) -> FailoverOutcome:
    """Epoch-advance failure-aware routing (the vectorized fast path).

    Same attempt/backoff/landing semantics as
    :func:`route_with_failover`, different mechanics: the backlog lives
    in dense arrays settled through one shared completion heap
    (:class:`_DenseBacklog`), and the live/dead masks at the *arrival*
    instants come from one whole-trace
    :meth:`~repro.workload.FaultSchedule.down_mask` sweep — one
    searchsorted per device over the full arrival array instead of a
    Python interval lookup per (request, device) pair.  Retry probes
    (rare, and at off-arrival instants) use the exact
    :meth:`~repro.workload.FaultSchedule.alive_mask` query the scalar
    loop uses.  Booked completion times and backoff instants are
    computed with the same Python-float arithmetic, masks are exact
    boolean replays, and decisions go through the same
    :meth:`Router.decide_one` — so the outcome is bit-identical to the
    scalar reference (pinned in tests/test_fleet_faults.py and
    asserted in-bench).
    """
    if faults.n_devices != ctx.n_devices:
        raise ValueError(
            f"fault schedule covers {faults.n_devices} devices, "
            f"context has {ctx.n_devices}"
        )
    n = int(ctx.arrivals.size)
    backlog = _DenseBacklog(ctx.n_devices)
    queue_len = backlog.queue_len
    last_completion = backlog.last_completion
    settle = backlog.settle
    assign = backlog.assign
    state = router.begin_route(ctx)
    assignments = np.empty(n, dtype=np.int64)
    dispatch_times = np.empty(n)
    retries = np.zeros(n, dtype=np.int64)
    alive_rows = ~faults.down_mask(ctx.arrivals)

    arrivals = ctx.arrivals.tolist()
    demands = ctx.demands.tolist()
    decide = router.decide_one
    for i in range(n):
        now = arrivals[i]
        t = now
        k = 0
        settle(t)
        alive = alive_rows[i]
        choice = decide(state, queue_len, last_completion, t, ctx)
        while not alive[choice]:
            if k == config.max_retries:
                choice = -1
                break
            k += 1
            t = t + _backoff_delay(k, config)
            settle(t)
            alive = faults.alive_mask(t)
            if config.policy == "resubmit":
                choice = decide(state, queue_len, last_completion, t, ctx)
            elif alive.any():
                choice = decide(
                    state, queue_len, last_completion, t, ctx, alive=alive
                )
        if choice >= 0:
            assign(choice, t, demands[i])
        assignments[i] = choice
        dispatch_times[i] = t
        retries[i] = k
    return FailoverOutcome(
        arrivals=ctx.arrivals,
        assignments=assignments,
        dispatch_times=dispatch_times,
        retries=retries,
    )


# ---------------------------------------------------------------------- #
# overload resilience: circuit breakers, retry budget, deadline shedding
# ---------------------------------------------------------------------- #

#: assignment sentinel — retries exhausted, request dropped (as in
#: :class:`FailoverOutcome`)
DROPPED_ASSIGNMENT = -1
#: assignment sentinel — request proactively shed (deadline or budget)
SHED_ASSIGNMENT = -2

#: ``OverloadOutcome.shed_reasons`` codes
SHED_NONE = 0
SHED_DEADLINE = 1
SHED_BUDGET = 2


@dataclass(frozen=True)
class BreakerConfig:
    """Per-device circuit breaker driven by observed dispatch outcomes.

    The breaker watches what the dispatcher actually observes — a chosen
    device dead at the attempt instant, or a booked queue wait past
    ``latency_threshold`` — rather than the fault schedule itself, so a
    sick device is routed around *before* its fault interval is known.
    Classic three-state machine, per device:

    - **closed** (healthy): failures count; ``failure_threshold``
      consecutive failures trip the breaker open (a success resets the
      run).
    - **open**: the device is masked out of routing decisions for
      ``recovery_time`` seconds after the trip.
    - **half-open**: after the recovery window the device takes probe
      traffic again; ``half_open_successes`` consecutive successes
      close the breaker, any failure re-trips it immediately.

    When every device is breaker-open the mask is dropped entirely —
    breakers bound blast radius, they never black-hole the whole fleet.
    """

    failure_threshold: int = 3
    recovery_time: float = 30.0
    half_open_successes: int = 1
    latency_threshold: float = math.inf

    def __post_init__(self) -> None:
        if int(self.failure_threshold) < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if not self.recovery_time > 0:
            raise ValueError(
                f"recovery_time must be > 0, got {self.recovery_time}"
            )
        if int(self.half_open_successes) < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, "
                f"got {self.half_open_successes}"
            )
        if math.isnan(self.latency_threshold) or self.latency_threshold <= 0:
            raise ValueError(
                f"latency_threshold must be > 0 (inf = latency-blind), "
                f"got {self.latency_threshold}"
            )


@dataclass(frozen=True)
class RetryBudgetConfig:
    """Fleet-wide retry token bucket.

    Every backoff retry (across *all* requests) consumes one token;
    tokens refill continuously at ``refill_rate`` per second up to
    ``capacity``.  An empty bucket sheds the request instead of retrying
    — bounding total retry amplification so an outage degrades into
    load shedding rather than a retry storm.
    """

    capacity: float = 32.0
    refill_rate: float = 1.0

    def __post_init__(self) -> None:
        if math.isnan(self.capacity) or self.capacity < 0:
            raise ValueError(
                f"capacity must be >= 0, got {self.capacity}"
            )
        if not 0 <= self.refill_rate < math.inf:
            raise ValueError(
                f"refill_rate must be finite and >= 0, "
                f"got {self.refill_rate}"
            )


@dataclass(frozen=True)
class OverloadConfig:
    """Graceful-degradation settings for the overload-aware engines.

    Composes the existing backoff/failover shape with three independent
    protections, each disabled by default: per-device circuit breakers
    (``breaker``), a fleet-wide retry budget (``retry_budget``), and
    deadline-aware admission control (``slo`` seconds per request; a
    request whose predicted completion — backlog plus brownout-inflated
    demand — misses ``arrival + slo`` is shed instead of dispatched).
    With all three left ``None`` the overload engines reduce exactly to
    the plain failover path (pinned bit-identical in tests).
    """

    failover: FailoverConfig = FailoverConfig()
    breaker: Optional[BreakerConfig] = None
    retry_budget: Optional[RetryBudgetConfig] = None
    slo: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.failover, FailoverConfig):
            raise TypeError(
                f"failover must be a FailoverConfig, got {self.failover!r}"
            )
        if self.breaker is not None and not isinstance(
            self.breaker, BreakerConfig
        ):
            raise TypeError(
                f"breaker must be a BreakerConfig or None, "
                f"got {self.breaker!r}"
            )
        if self.retry_budget is not None and not isinstance(
            self.retry_budget, RetryBudgetConfig
        ):
            raise TypeError(
                f"retry_budget must be a RetryBudgetConfig or None, "
                f"got {self.retry_budget!r}"
            )
        if self.slo is not None and not (
            0 < float(self.slo) < math.inf
        ):
            raise ValueError(
                f"slo must be finite and > 0 (None disables deadlines), "
                f"got {self.slo}"
            )


#: breaker states (int8 codes in :class:`_BreakerFleet`)
_BRK_CLOSED, _BRK_OPEN, _BRK_HALF_OPEN = 0, 1, 2


class _BreakerFleet:
    """Per-device breaker state shared by both overload engines.

    Both the scalar reference and the vectorized engine instantiate this
    exact class and feed it the same (choice, instant, wait) sequence,
    so breaker decisions are bit-identical across engines by
    construction.  With ``config=None`` every method is a no-op and
    :meth:`routing_mask` returns None — the disabled path adds nothing
    to the failover semantics.
    """

    def __init__(self, n_devices: int, config: Optional[BreakerConfig]):
        self.config = config
        self.trips = 0
        if config is None:
            return
        self.state = np.zeros(n_devices, dtype=np.int8)
        self.failures = np.zeros(n_devices, dtype=np.int64)
        self.successes = np.zeros(n_devices, dtype=np.int64)
        self.opened_at = np.zeros(n_devices)

    def routing_mask(self, now: float) -> Optional[np.ndarray]:
        """Mask of breaker-admissible devices at ``now`` (True = route
        here), after promoting recovered breakers to half-open.  None
        when breakers are disabled; an all-True mask when none is open
        (equivalent to None for every router — decisions *and* RNG
        stream consumption match, so trips alone perturb routing)."""
        if self.config is None:
            return None
        open_mask = self.state == _BRK_OPEN
        if open_mask.any():
            ready = open_mask & (
                now - self.opened_at >= self.config.recovery_time
            )
            if ready.any():
                self.state[ready] = _BRK_HALF_OPEN
                self.successes[ready] = 0
                open_mask &= ~ready
        if not open_mask.any():
            return ~open_mask
        mask = ~open_mask
        if not mask.any():
            return None  # whole fleet tripped: never black-hole it
        return mask

    def record_failure(self, d: int, now: float) -> None:
        """A dispatch attempt on ``d`` failed (dead pick or timeout)."""
        if self.config is None:
            return
        st = int(self.state[d])
        if st == _BRK_HALF_OPEN:
            # failed reprobe: straight back to open
            self.state[d] = _BRK_OPEN
            self.opened_at[d] = now
            self.trips += 1
        elif st == _BRK_CLOSED:
            self.failures[d] += 1
            if self.failures[d] >= self.config.failure_threshold:
                self.state[d] = _BRK_OPEN
                self.opened_at[d] = now
                self.failures[d] = 0
                self.trips += 1
        # already open (all-tripped fallback routed here): stay open

    def record_success(self, d: int) -> None:
        """A dispatch attempt on ``d`` booked within the threshold."""
        if self.config is None:
            return
        st = int(self.state[d])
        if st == _BRK_HALF_OPEN:
            self.successes[d] += 1
            if self.successes[d] >= self.config.half_open_successes:
                self.state[d] = _BRK_CLOSED
                self.failures[d] = 0
        elif st == _BRK_CLOSED:
            self.failures[d] = 0  # a success breaks the consecutive run

    def record_outcome(self, d: int, now: float, wait: float) -> None:
        """Classify a booked dispatch: queue wait past the latency
        threshold counts as a failure (timeout), anything else as a
        success."""
        if self.config is None:
            return
        if wait > self.config.latency_threshold:
            self.record_failure(d, now)
        else:
            self.record_success(d)


class _RetryBudget:
    """Fleet-wide retry token bucket shared by both overload engines.

    Refill happens lazily at consumption instants with plain
    Python-float arithmetic; attempt instants are not globally monotone
    (a backed-off retry can pass a later arrival), so refill only ever
    advances the clock — identical call sequences produce identical
    levels in both engines.
    """

    def __init__(self, config: Optional[RetryBudgetConfig]):
        self.config = config
        if config is not None:
            self.level = float(config.capacity)
            self._last = 0.0

    def take(self, now: float) -> bool:
        """Consume one retry token at ``now``; False means exhausted
        (the caller sheds instead of retrying).  Always True when the
        budget is disabled."""
        if self.config is None:
            return True
        if now > self._last:
            self.level = min(
                self.config.capacity,
                self.level + (now - self._last) * self.config.refill_rate,
            )
            self._last = now
        if self.level < 1.0:
            return False
        self.level -= 1.0
        return True


def _routable(
    alive: np.ndarray, breaker_mask: Optional[np.ndarray]
) -> np.ndarray:
    """Live devices, narrowed to breaker-admissible ones when any such
    device survives — breakers refine failover, they never turn a
    reachable fleet into a black hole."""
    if breaker_mask is None:
        return alive
    both = alive & breaker_mask
    return both if both.any() else alive


@dataclass
class OverloadOutcome:
    """Per-request result of one overload-aware routing pass.

    Extends the :class:`FailoverOutcome` encoding: ``assignments[i]`` is
    the landing device, ``-1`` for a dropped request (retries exhausted,
    fleet down) or ``-2`` for a *shed* request (deadline or retry-budget
    admission control — see ``shed_reasons``).  ``completions[i]`` is
    the dispatcher-model booked completion instant for landed requests
    (NaN otherwise) and ``deadlines[i]`` the admission deadline
    (``arrival + slo``; +inf with deadlines disabled) — together they
    define goodput: a request is *good* when it landed and its booked
    completion made its deadline.  ``effective_demands[i]`` is the
    service demand actually booked (brownout-inflated for landed
    requests; the nominal demand otherwise).
    """

    arrivals: np.ndarray
    assignments: np.ndarray
    dispatch_times: np.ndarray
    retries: np.ndarray
    shed_reasons: np.ndarray
    deadlines: np.ndarray
    completions: np.ndarray
    effective_demands: np.ndarray
    n_breaker_trips: int = 0

    @property
    def landed(self) -> np.ndarray:
        """Boolean mask of requests that reached a device."""
        return self.assignments >= 0

    @property
    def shed(self) -> np.ndarray:
        """Boolean mask of proactively shed requests."""
        return self.assignments == SHED_ASSIGNMENT

    @property
    def n_shed(self) -> int:
        """Requests shed by deadline or retry-budget admission control."""
        return int(self.shed.sum())

    @property
    def n_budget_shed(self) -> int:
        """Requests shed specifically by retry-budget exhaustion."""
        return int((self.shed_reasons == SHED_BUDGET).sum())

    @property
    def n_dropped(self) -> int:
        """Requests that exhausted their retries (fleet unreachable)."""
        return int((self.assignments == DROPPED_ASSIGNMENT).sum())

    @property
    def n_retries(self) -> int:
        """Total backoff retries across all requests."""
        return int(self.retries.sum())

    @property
    def good(self) -> np.ndarray:
        """Landed requests whose booked completion made the deadline."""
        with np.errstate(invalid="ignore"):
            return self.landed & (self.completions <= self.deadlines)

    @property
    def goodput(self) -> float:
        """Fraction of *offered* requests served within their deadline
        (1.0 for an empty trace).  Never exceeds throughput — shed and
        dropped requests count against it."""
        n = int(self.arrivals.size)
        return float(self.good.sum()) / n if n else 1.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of *landed* requests that made their deadline
        (1.0 when nothing landed — there is nothing to attain)."""
        n_landed = int(self.landed.sum())
        return float(self.good.sum()) / n_landed if n_landed else 1.0

    @property
    def latency_inflation(self) -> float:
        """Mean added dispatch delay (seconds) over landed requests."""
        landed = self.landed
        if not landed.any():
            return 0.0
        extra = self.dispatch_times[landed] - self.arrivals[landed]
        return float(extra.mean())


def route_with_overload(
    router: Router,
    ctx: RouteContext,
    faults: FaultSchedule,
    config: OverloadConfig = OverloadConfig(),
) -> OverloadOutcome:
    """Scalar overload-aware reference loop (the semantics of record).

    The :func:`route_with_failover` retry loop extended with the three
    graceful-degradation mechanisms of :class:`OverloadConfig`, each a
    provable no-op when disabled:

    - every decision consults the breaker mask
      (:meth:`_BreakerFleet.routing_mask` — None when disabled, so the
      natural choice stays fault- and breaker-oblivious);
    - every backoff retry must first win a token from the fleet-wide
      retry budget, else the request is shed (``shed_reasons`` =
      budget);
    - a retry instant past the request's deadline, or a booked
      completion (backlog wait + brownout-inflated demand) that would
      miss it, sheds the request instead of dispatching it
      (``shed_reasons`` = deadline).

    Landed requests book ``demand × severity_at(device, t)`` — a
    browned-out device serves, but slowly, and the deadline check sees
    that inflated cost.  With breakers, budget, and deadlines disabled
    and a fail-stop schedule, assignments, dispatch times, and retries
    are bit-identical to :func:`route_with_failover` (severity is
    exactly 1.0 on live devices, and ``x * 1.0 == x`` bitwise).
    """
    if faults.n_devices != ctx.n_devices:
        raise ValueError(
            f"fault schedule covers {faults.n_devices} devices, "
            f"context has {ctx.n_devices}"
        )
    failover = config.failover
    n = int(ctx.arrivals.size)
    tracker = _BacklogTracker(ctx.n_devices)
    state = router.begin_route(ctx)
    breaker = _BreakerFleet(ctx.n_devices, config.breaker)
    budget = _RetryBudget(config.retry_budget)
    assignments = np.empty(n, dtype=np.int64)
    dispatch_times = np.empty(n)
    retries = np.zeros(n, dtype=np.int64)
    shed_reasons = np.zeros(n, dtype=np.int8)
    deadlines = (
        np.full(n, math.inf)
        if config.slo is None
        else ctx.arrivals + float(config.slo)
    )
    completions = np.full(n, math.nan)
    effective_demands = np.array(ctx.demands, dtype=np.float64, copy=True)
    alive_rows = ~faults.down_mask(ctx.arrivals)

    def backlog_view():
        lengths = np.array(
            [tracker.queue_len(d) for d in range(ctx.n_devices)],
            dtype=np.int64,
        )
        return lengths, tracker.last_completion

    for i in range(n):
        now = float(ctx.arrivals[i])
        t = now
        k = 0
        deadline = float(deadlines[i])
        reason = SHED_NONE
        tracker.settle(t)
        alive = alive_rows[i]
        lengths, last = backlog_view()
        choice = router.decide_one(
            state, lengths, last, t, ctx, alive=breaker.routing_mask(t)
        )
        while not alive[choice]:
            breaker.record_failure(choice, t)
            if k == failover.max_retries:
                choice = DROPPED_ASSIGNMENT
                break
            if not budget.take(t):
                choice = SHED_ASSIGNMENT
                reason = SHED_BUDGET
                break
            k += 1
            t = t + _backoff_delay(k, failover)
            if t > deadline:
                choice = SHED_ASSIGNMENT
                reason = SHED_DEADLINE
                break
            tracker.settle(t)
            alive = faults.alive_mask(t)
            if failover.policy == "resubmit":
                lengths, last = backlog_view()
                choice = router.decide_one(
                    state, lengths, last, t, ctx,
                    alive=breaker.routing_mask(t),
                )
            elif alive.any():
                lengths, last = backlog_view()
                choice = router.decide_one(
                    state, lengths, last, t, ctx,
                    alive=_routable(alive, breaker.routing_mask(t)),
                )
            # whole fleet down under next_best: hold the choice, back off
        if choice >= 0:
            demand = float(ctx.demands[i]) * faults.severity_at(choice, t)
            start = max(t, float(tracker.last_completion[choice]))
            done = start + demand
            if done > deadline:
                choice = SHED_ASSIGNMENT
                reason = SHED_DEADLINE
            else:
                tracker.assign(choice, t, demand)
                completions[i] = done
                effective_demands[i] = demand
                breaker.record_outcome(choice, t, start - t)
        assignments[i] = choice
        dispatch_times[i] = t
        retries[i] = k
        shed_reasons[i] = reason
    return OverloadOutcome(
        arrivals=ctx.arrivals,
        assignments=assignments,
        dispatch_times=dispatch_times,
        retries=retries,
        shed_reasons=shed_reasons,
        deadlines=deadlines,
        completions=completions,
        effective_demands=effective_demands,
        n_breaker_trips=breaker.trips,
    )


def route_with_overload_step(
    router: Router,
    ctx: RouteContext,
    faults: FaultSchedule,
    config: OverloadConfig = OverloadConfig(),
) -> OverloadOutcome:
    """Epoch-advance overload-aware routing (the vectorized fast path).

    Same semantics as :func:`route_with_overload`, same mechanics split
    as the failover pair: dense backlog arrays settled through one
    shared completion heap, arrival-instant masks from one whole-trace
    :meth:`~repro.workload.FaultSchedule.down_mask` sweep, exact
    :meth:`~repro.workload.FaultSchedule.alive_mask` point queries for
    retry probes.  Breaker and retry-budget state live in the *same*
    classes the scalar loop uses (:class:`_BreakerFleet`,
    :class:`_RetryBudget`) and observe the same event sequence, so the
    outcome — assignments, dispatch times, retries, shed mask and
    reasons, booked completions, trip count — is bit-identical to the
    scalar reference (pinned in tests/test_fleet_overload.py and
    asserted in-bench).
    """
    if faults.n_devices != ctx.n_devices:
        raise ValueError(
            f"fault schedule covers {faults.n_devices} devices, "
            f"context has {ctx.n_devices}"
        )
    failover = config.failover
    n = int(ctx.arrivals.size)
    backlog = _DenseBacklog(ctx.n_devices)
    queue_len = backlog.queue_len
    last_completion = backlog.last_completion
    settle = backlog.settle
    assign = backlog.assign
    state = router.begin_route(ctx)
    breaker = _BreakerFleet(ctx.n_devices, config.breaker)
    budget = _RetryBudget(config.retry_budget)
    assignments = np.empty(n, dtype=np.int64)
    dispatch_times = np.empty(n)
    retries = np.zeros(n, dtype=np.int64)
    shed_reasons = np.zeros(n, dtype=np.int8)
    deadlines = (
        np.full(n, math.inf)
        if config.slo is None
        else ctx.arrivals + float(config.slo)
    )
    completions = np.full(n, math.nan)
    effective_demands = np.array(ctx.demands, dtype=np.float64, copy=True)
    alive_rows = ~faults.down_mask(ctx.arrivals)

    arrivals = ctx.arrivals.tolist()
    demands = ctx.demands.tolist()
    deadline_list = deadlines.tolist()
    decide = router.decide_one
    severity_at = faults.severity_at
    for i in range(n):
        now = arrivals[i]
        t = now
        k = 0
        deadline = deadline_list[i]
        reason = SHED_NONE
        settle(t)
        alive = alive_rows[i]
        choice = decide(
            state, queue_len, last_completion, t, ctx,
            alive=breaker.routing_mask(t),
        )
        while not alive[choice]:
            breaker.record_failure(choice, t)
            if k == failover.max_retries:
                choice = DROPPED_ASSIGNMENT
                break
            if not budget.take(t):
                choice = SHED_ASSIGNMENT
                reason = SHED_BUDGET
                break
            k += 1
            t = t + _backoff_delay(k, failover)
            if t > deadline:
                choice = SHED_ASSIGNMENT
                reason = SHED_DEADLINE
                break
            settle(t)
            alive = faults.alive_mask(t)
            if failover.policy == "resubmit":
                choice = decide(
                    state, queue_len, last_completion, t, ctx,
                    alive=breaker.routing_mask(t),
                )
            elif alive.any():
                choice = decide(
                    state, queue_len, last_completion, t, ctx,
                    alive=_routable(alive, breaker.routing_mask(t)),
                )
            # whole fleet down under next_best: hold the choice, back off
        if choice >= 0:
            demand = demands[i] * severity_at(choice, t)
            start = max(t, float(last_completion[choice]))
            done = start + demand
            if done > deadline:
                choice = SHED_ASSIGNMENT
                reason = SHED_DEADLINE
            else:
                assign(choice, t, demand)
                completions[i] = done
                effective_demands[i] = demand
                breaker.record_outcome(choice, t, start - t)
        assignments[i] = choice
        dispatch_times[i] = t
        retries[i] = k
        shed_reasons[i] = reason
    return OverloadOutcome(
        arrivals=ctx.arrivals,
        assignments=assignments,
        dispatch_times=dispatch_times,
        retries=retries,
        shed_reasons=shed_reasons,
        deadlines=deadlines,
        completions=completions,
        effective_demands=effective_demands,
        n_breaker_trips=breaker.trips,
    )


class Dispatcher:
    """Split one arrival trace into per-device sub-traces.

    Parameters
    ----------
    router:
        Assignment policy (a :class:`Router` instance or registry name).
    n_devices:
        Fleet size (>= 1).
    device:
        The replicated device model (routers may consult its constants).
    service_time:
        Default per-request demand for the dispatcher-level service
        model, matching the simulator's default rule.
    seed:
        Routing-stream seed; a dispatch is a pure function of
        ``(trace, seed)``, so repeated dispatches are identical.
    """

    def __init__(
        self,
        router,
        n_devices: int,
        device: PowerStateMachine,
        service_time: float = 0.5,
        seed: int = 0,
    ) -> None:
        if isinstance(router, str):
            router = make_router(router)
        if not isinstance(router, Router):
            raise TypeError(f"router must be a Router or name, got {router!r}")
        if int(n_devices) < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        if service_time <= 0:
            raise ValueError(f"service_time must be > 0, got {service_time}")
        self.router = router
        self.n_devices = int(n_devices)
        self.device = device
        self.service_time = float(service_time)
        self.seed = int(seed)

    def _context(self, trace: Trace) -> RouteContext:
        return RouteContext(
            arrivals=trace.arrival_times,
            demands=resolve_demands(trace, self.service_time),
            n_devices=self.n_devices,
            device=self.device,
            rng=np.random.default_rng(self.seed),
        )

    def assignments(self, trace: Trace, vectorized: bool = True) -> np.ndarray:
        """Per-request device assignments.

        ``vectorized=True`` uses :meth:`Router.route_batch` when the
        router offers it (bit-identical to the scalar path for stateless
        routers); ``vectorized=False`` forces the scalar reference loop.
        """
        ctx = self._context(trace)
        if vectorized:
            batch = self.router.route_batch(ctx)
            if batch is not None:
                return np.asarray(batch, dtype=np.int64)
            # fresh rng per stage keeps each path a pure function of
            # (trace, seed); arrays are reused as-is
            ctx = dataclasses.replace(
                ctx, rng=np.random.default_rng(self.seed)
            )
            stepped = self.router.route_step_batch(ctx)
            if stepped is not None:
                return np.asarray(stepped, dtype=np.int64)
            ctx = dataclasses.replace(
                ctx, rng=np.random.default_rng(self.seed)
            )
        return np.asarray(self.router.route(ctx), dtype=np.int64)

    def dispatch(self, trace: Trace, vectorized: bool = True) -> List[Trace]:
        """Route and split: one sub-trace per device, full shared window."""
        return trace.split(
            self.assignments(trace, vectorized=vectorized),
            n_parts=self.n_devices,
        )

    def dispatch_with_faults(
        self,
        trace: Trace,
        faults,
        failover: FailoverConfig = FailoverConfig(),
        vectorized: bool = True,
        fault_seed: Optional[int] = None,
    ) -> Tuple[List[Trace], FailoverOutcome]:
        """Route under a fault schedule and split into per-device traces.

        ``faults`` is a :class:`~repro.workload.FaultSchedule` or a
        :class:`~repro.workload.FaultProcess` (realized over the trace
        window with ``fault_seed``, defaulting to the routing seed).
        Dropped requests appear in the returned
        :class:`FailoverOutcome` but in no sub-trace; landed requests
        enter their device's stream at their *delayed* dispatch instant
        (a retried request can dispatch after a later arrival, so each
        sub-trace is stable-sorted by dispatch time), and the shared
        window is stretched to cover the latest landing.
        """
        schedule = resolve_fault_schedule(
            faults,
            self.n_devices,
            trace.duration,
            seed=self.seed if fault_seed is None else int(fault_seed),
        )
        if schedule is None:
            raise ValueError(
                "dispatch_with_faults needs a fault schedule; "
                "use dispatch() for the fault-free path"
            )
        ctx = self._context(trace)
        engine = route_with_failover_step if vectorized else route_with_failover
        outcome = engine(self.router, ctx, schedule, failover)
        return (
            self._split_outcome(outcome, ctx.demands, trace.duration),
            outcome,
        )

    def dispatch_with_overload(
        self,
        trace: Trace,
        faults,
        overload: OverloadConfig = OverloadConfig(),
        vectorized: bool = True,
        fault_seed: Optional[int] = None,
    ) -> Tuple[List[Trace], OverloadOutcome]:
        """Route under overload protection and split into sub-traces.

        The overload twin of :meth:`dispatch_with_faults`: breakers,
        retry budget, deadline shedding, and brownout-inflated demands
        per ``overload``.  ``faults`` may also be None — an always-up
        schedule, so pure admission control can run without fault
        injection.  Dropped *and shed* requests appear in the returned
        :class:`OverloadOutcome` but in no sub-trace; landed requests
        enter their device's stream at their delayed dispatch instant
        with their brownout-inflated demand.
        """
        schedule = resolve_fault_schedule(
            faults,
            self.n_devices,
            trace.duration,
            seed=self.seed if fault_seed is None else int(fault_seed),
        )
        if schedule is None:
            schedule = no_faults(self.n_devices, trace.duration)
        ctx = self._context(trace)
        engine = route_with_overload_step if vectorized else route_with_overload
        outcome = engine(self.router, ctx, schedule, overload)
        return (
            self._split_outcome(
                outcome, outcome.effective_demands, trace.duration
            ),
            outcome,
        )

    def _split_outcome(
        self, outcome, demands: np.ndarray, duration: float
    ) -> List[Trace]:
        """Per-device sub-traces from a routing outcome: landed requests
        at their delayed dispatch instants (stable-sorted — a retried
        request can dispatch after a later arrival), shared window
        stretched to the latest landing."""
        duration = float(duration)
        landed = outcome.landed
        if landed.any():
            duration = max(
                duration, float(outcome.dispatch_times[landed].max())
            )
        subs: List[Trace] = []
        for d in range(self.n_devices):
            mask = outcome.assignments == d
            times = outcome.dispatch_times[mask]
            sub_demands = demands[mask]
            order = np.argsort(times, kind="stable")
            subs.append(
                Trace(
                    times[order],
                    duration=duration,
                    service_demands=sub_demands[order],
                )
            )
        return subs
