"""Request dispatch: route one arrival stream across N device replicas.

The paper's DPM problem is posed per device; a fleet serves one
high-rate arrival :class:`~repro.workload.Trace` with N replicas of the
same power-managed device behind a dispatcher.  The dispatcher owns the
(virtual) global clock: it walks the arrival stream once, assigns every
request to a device, and hands each device its sub-trace — the devices
then run the ordinary single-device simulation (scalar event loop or
vectorized busy-period kernel) on their own streams.

Routers mirror the repo's stateless/stateful split everywhere else:

- **Stateless** routers (:class:`RoundRobinRouter`,
  :class:`RandomRouter`) are pure functions of the request index (plus a
  routing RNG stream), so :meth:`Router.route_batch` partitions the
  whole trace with NumPy ops; the scalar :meth:`Router.route` loop is the
  reference semantics and the two are pinned bit-identical in tests.
- **Queue-aware** routers (:class:`JoinShortestQueueRouter`,
  :class:`PowerAwareRouter`) depend on the evolving per-device backlog,
  so they run the scalar reference path only (``route_batch`` returns
  None), exactly like stateful policies fall back to the scalar event
  loop in :mod:`repro.runtime.eventsim`.

Queue-aware routing uses the *dispatcher-level* service model: FIFO
per-device backlog from arrival times and service demands, ignoring DPM
wake-up delays (the dispatcher does not know each device's power state
ahead of simulation; a router that did would couple routing to policy
internals).  :class:`PowerAwareRouter` approximates power state from the
same backlog picture: a device that is busy, or idle for less than an
awake window, is presumed still awake.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

import numpy as np

from ..device import PowerStateMachine
from ..sim.simulator import resolve_demands
from ..workload.trace import Trace


@dataclass(frozen=True)
class RouteContext:
    """Everything a router may consult while assigning one trace.

    Attributes
    ----------
    arrivals:
        Absolute request arrival times (sorted, one per request).
    demands:
        Resolved per-request service demands (same length), via
        :func:`~repro.sim.simulator.resolve_demands` — the service model
        queue-aware routers plan against.
    n_devices:
        Fleet size; assignments must land in ``[0, n_devices)``.
    device:
        The replicated device model (for break-even style constants).
    rng:
        Routing randomness stream, freshly seeded per dispatch so a
        dispatch is a pure function of ``(trace, seed)``.
    """

    arrivals: np.ndarray
    demands: np.ndarray
    n_devices: int
    device: PowerStateMachine
    rng: np.random.Generator


class Router(ABC):
    """Assignment policy of the dispatcher."""

    #: short name used in report tables and the CLI registry
    name: str = "router"

    @abstractmethod
    def route(self, ctx: RouteContext) -> np.ndarray:
        """Reference semantics: one pass over the requests, one
        assignment per request (int64 array in ``[0, n_devices)``)."""

    def route_batch(self, ctx: RouteContext) -> Optional[np.ndarray]:
        """Vectorized assignments, or None.

        Opt-in fast path mirroring
        :meth:`~repro.sim.policy_api.EventPolicy.decide_batch`: only a
        router whose decisions are independent of the evolving queue
        state may implement it, and it must reproduce :meth:`route`
        bit-for-bit (pinned in tests/test_fleet_dispatch.py).
        """
        return None


class RoundRobinRouter(Router):
    """Cycle through the devices in request order (the classic default)."""

    name = "round_robin"

    def route(self, ctx: RouteContext) -> np.ndarray:
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            out[i] = i % ctx.n_devices
        return out

    def route_batch(self, ctx: RouteContext) -> np.ndarray:
        return np.arange(ctx.arrivals.size, dtype=np.int64) % ctx.n_devices


class RandomRouter(Router):
    """Uniform-random assignment from the routing stream.

    Scalar and batch paths draw from the same generator state; NumPy's
    bounded-integer sampling consumes the stream identically one-at-a-time
    and batched, so the two are bit-identical (and pinned so).
    """

    name = "random"

    def route(self, ctx: RouteContext) -> np.ndarray:
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            out[i] = int(ctx.rng.integers(0, ctx.n_devices))
        return out

    def route_batch(self, ctx: RouteContext) -> np.ndarray:
        return ctx.rng.integers(0, ctx.n_devices, size=ctx.arrivals.size,
                                dtype=np.int64)


class _BacklogTracker:
    """Per-device FIFO backlog under the dispatcher-level service model."""

    def __init__(self, n_devices: int) -> None:
        # per device: completion times of assigned-but-possibly-pending
        # requests (monotone per device, so popping the head suffices)
        self._completions: List[List[float]] = [[] for _ in range(n_devices)]
        self._head: List[int] = [0] * n_devices
        self.last_completion = np.zeros(n_devices)

    def settle(self, now: float) -> None:
        """Drop requests already completed by ``now``."""
        for d, comps in enumerate(self._completions):
            head = self._head[d]
            while head < len(comps) and comps[head] <= now:
                head += 1
            self._head[d] = head

    def queue_len(self, d: int) -> int:
        """Requests of device ``d`` still in queue/service (post-settle)."""
        return len(self._completions[d]) - self._head[d]

    def assign(self, d: int, now: float, demand: float) -> None:
        """Book one request on device ``d`` arriving at ``now``."""
        start = max(now, float(self.last_completion[d]))
        done = start + demand
        self._completions[d].append(done)
        self.last_completion[d] = done


class JoinShortestQueueRouter(Router):
    """Send each request to the device with the fewest pending requests.

    The classic latency-oriented router: queue length is measured at the
    request's arrival instant under the dispatcher-level service model;
    ties break to the lowest device index (deterministic).
    """

    name = "jsq"

    def route(self, ctx: RouteContext) -> np.ndarray:
        tracker = _BacklogTracker(ctx.n_devices)
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            now = float(ctx.arrivals[i])
            tracker.settle(now)
            lengths = [tracker.queue_len(d) for d in range(ctx.n_devices)]
            choice = int(np.argmin(lengths))
            tracker.assign(choice, now, float(ctx.demands[i]))
            out[i] = choice
        return out


class PowerAwareRouter(Router):
    """Prefer devices that are presumably still awake.

    A device counts as *awake* at an arrival when it is busy, or has
    been idle for less than ``awake_window`` seconds (the linger of a
    timeout policy; defaults to the break-even time of the device's
    deepest state, the 2-competitive timeout).  Among awake devices with
    queue room (fewer than ``max_queue`` pending requests) the shortest
    queue wins; when every awake device is full, the most recently used
    *sleeping* device is woken (bounding latency); when the whole fleet
    is asleep, the most recently used device is re-woken — consolidation
    that leaves the other devices' idle periods long enough to amortize
    deep sleeps.  Ties break to the lowest device index.
    """

    name = "power_aware"

    def __init__(
        self,
        awake_window: Optional[float] = None,
        max_queue: int = 4,
    ) -> None:
        if awake_window is not None and awake_window < 0:
            raise ValueError(f"awake_window must be >= 0, got {awake_window}")
        if int(max_queue) < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._awake_window = awake_window
        self._max_queue = int(max_queue)

    def resolve_window(self, device: PowerStateMachine) -> float:
        """The configured awake window, or the device's default."""
        if self._awake_window is not None:
            return float(self._awake_window)
        return device.break_even_time(
            device.deepest_state(), device.initial_state
        )

    def route(self, ctx: RouteContext) -> np.ndarray:
        window = self.resolve_window(ctx.device)
        tracker = _BacklogTracker(ctx.n_devices)
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            now = float(ctx.arrivals[i])
            tracker.settle(now)
            lengths = np.array(
                [tracker.queue_len(d) for d in range(ctx.n_devices)]
            )
            awake = (lengths > 0) | (now - tracker.last_completion < window)
            room = awake & (lengths < self._max_queue)
            if room.any():
                # shortest queue among awake devices with room, index ties
                masked = np.where(room, lengths, np.iinfo(np.int64).max)
                choice = int(np.argmin(masked))
            elif not awake.all():
                # awake devices are full (or none awake): wake the most
                # recently used sleeping device
                recency = np.where(~awake, tracker.last_completion, -np.inf)
                choice = int(np.argmax(recency))
            else:
                # every device awake and full: plain shortest queue
                choice = int(np.argmin(lengths))
            tracker.assign(choice, now, float(ctx.demands[i]))
            out[i] = choice
        return out


#: registry used by the sweep layer and the CLI ``--router`` flag
ROUTERS: Dict[str, Type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    RandomRouter.name: RandomRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
    PowerAwareRouter.name: PowerAwareRouter,
}


def make_router(name: str) -> Router:
    """Instantiate a registered router by name (CLI / sweep entry)."""
    try:
        return ROUTERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
        ) from None


class Dispatcher:
    """Split one arrival trace into per-device sub-traces.

    Parameters
    ----------
    router:
        Assignment policy (a :class:`Router` instance or registry name).
    n_devices:
        Fleet size (>= 1).
    device:
        The replicated device model (routers may consult its constants).
    service_time:
        Default per-request demand for the dispatcher-level service
        model, matching the simulator's default rule.
    seed:
        Routing-stream seed; a dispatch is a pure function of
        ``(trace, seed)``, so repeated dispatches are identical.
    """

    def __init__(
        self,
        router,
        n_devices: int,
        device: PowerStateMachine,
        service_time: float = 0.5,
        seed: int = 0,
    ) -> None:
        if isinstance(router, str):
            router = make_router(router)
        if not isinstance(router, Router):
            raise TypeError(f"router must be a Router or name, got {router!r}")
        if int(n_devices) < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        if service_time <= 0:
            raise ValueError(f"service_time must be > 0, got {service_time}")
        self.router = router
        self.n_devices = int(n_devices)
        self.device = device
        self.service_time = float(service_time)
        self.seed = int(seed)

    def _context(self, trace: Trace) -> RouteContext:
        return RouteContext(
            arrivals=trace.arrival_times,
            demands=resolve_demands(trace, self.service_time),
            n_devices=self.n_devices,
            device=self.device,
            rng=np.random.default_rng(self.seed),
        )

    def assignments(self, trace: Trace, vectorized: bool = True) -> np.ndarray:
        """Per-request device assignments.

        ``vectorized=True`` uses :meth:`Router.route_batch` when the
        router offers it (bit-identical to the scalar path for stateless
        routers); ``vectorized=False`` forces the scalar reference loop.
        """
        ctx = self._context(trace)
        if vectorized:
            batch = self.router.route_batch(ctx)
            if batch is not None:
                return np.asarray(batch, dtype=np.int64)
            # fresh rng for the scalar pass; arrays are reused as-is
            ctx = dataclasses.replace(
                ctx, rng=np.random.default_rng(self.seed)
            )
        return np.asarray(self.router.route(ctx), dtype=np.int64)

    def dispatch(self, trace: Trace, vectorized: bool = True) -> List[Trace]:
        """Route and split: one sub-trace per device, full shared window."""
        return trace.split(
            self.assignments(trace, vectorized=vectorized),
            n_parts=self.n_devices,
        )
