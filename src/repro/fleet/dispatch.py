"""Request dispatch: route one arrival stream across N device replicas.

The paper's DPM problem is posed per device; a fleet serves one
high-rate arrival :class:`~repro.workload.Trace` with N replicas of the
same power-managed device behind a dispatcher.  The dispatcher owns the
(virtual) global clock: it walks the arrival stream once, assigns every
request to a device, and hands each device its sub-trace — the devices
then run the ordinary single-device simulation (scalar event loop or
vectorized busy-period kernel) on their own streams.

Routers mirror the repo's stateless/stateful split everywhere else:

- **Stateless** routers (:class:`RoundRobinRouter`,
  :class:`RandomRouter`) are pure functions of the request index (plus a
  routing RNG stream), so :meth:`Router.route_batch` partitions the
  whole trace with NumPy ops; the scalar :meth:`Router.route` loop is the
  reference semantics and the two are pinned bit-identical in tests.
- **Queue-aware** routers (:class:`JoinShortestQueueRouter`,
  :class:`PowerAwareRouter`) depend on the evolving per-device backlog,
  so they cannot decide all requests at once — but they *can* advance
  the whole fleet one routing epoch (one arrival) per round over dense
  per-device arrays.  :meth:`Router.route_step_batch` is that path,
  the routing analogue of the lock-step
  :func:`~repro.runtime.eventsim.run_step_batched` engine: queue
  lengths and last-completion times live in ``(N,)`` arrays, settling
  pops a single completion heap (amortized one pop per request instead
  of an O(N) per-device walk), and each epoch's choice is a handful of
  whole-fleet array ops.  It is pinned bit-identical to the scalar
  :meth:`Router.route` reference, which remains the semantics of
  record.

Queue-aware routing uses the *dispatcher-level* service model: FIFO
per-device backlog from arrival times and service demands, ignoring DPM
wake-up delays (the dispatcher does not know each device's power state
ahead of simulation; a router that did would couple routing to policy
internals).  :class:`PowerAwareRouter` approximates power state from the
same backlog picture: a device that is busy, or idle for less than an
awake window, is presumed still awake.
"""

from __future__ import annotations

import dataclasses
import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from ..device import PowerStateMachine
from ..sim.simulator import resolve_demands
from ..workload.trace import Trace


@dataclass(frozen=True)
class RouteContext:
    """Everything a router may consult while assigning one trace.

    Attributes
    ----------
    arrivals:
        Absolute request arrival times (sorted, one per request).
    demands:
        Resolved per-request service demands (same length), via
        :func:`~repro.sim.simulator.resolve_demands` — the service model
        queue-aware routers plan against.
    n_devices:
        Fleet size; assignments must land in ``[0, n_devices)``.
    device:
        The replicated device model (for break-even style constants).
    rng:
        Routing randomness stream, freshly seeded per dispatch so a
        dispatch is a pure function of ``(trace, seed)``.
    """

    arrivals: np.ndarray
    demands: np.ndarray
    n_devices: int
    device: PowerStateMachine
    rng: np.random.Generator


class Router(ABC):
    """Assignment policy of the dispatcher."""

    #: short name used in report tables and the CLI registry
    name: str = "router"

    @abstractmethod
    def route(self, ctx: RouteContext) -> np.ndarray:
        """Reference semantics: one pass over the requests, one
        assignment per request (int64 array in ``[0, n_devices)``)."""

    def route_batch(self, ctx: RouteContext) -> Optional[np.ndarray]:
        """Vectorized assignments, or None.

        Opt-in fast path mirroring
        :meth:`~repro.sim.policy_api.EventPolicy.decide_batch`: only a
        router whose decisions are independent of the evolving queue
        state may implement it, and it must reproduce :meth:`route`
        bit-for-bit (pinned in tests/test_fleet_dispatch.py).
        """
        return None

    def route_step_batch(self, ctx: RouteContext) -> Optional[np.ndarray]:
        """Epoch-advance vectorized assignments, or None.

        Second opt-in fast path, mirroring
        :meth:`~repro.sim.policy_api.EventPolicy.decide_step_batch`: a
        queue-aware router advances dense per-device backlog arrays one
        routing epoch (one arrival) per round, so each request costs a
        few whole-fleet array ops instead of an O(N) Python walk over
        the devices.  It must reproduce :meth:`route` bit-for-bit
        (pinned in tests/test_fleet_dispatch.py).  Consulted by the
        dispatcher only after :meth:`route_batch` declined.
        """
        return None


class RoundRobinRouter(Router):
    """Cycle through the devices in request order (the classic default)."""

    name = "round_robin"

    def route(self, ctx: RouteContext) -> np.ndarray:
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            out[i] = i % ctx.n_devices
        return out

    def route_batch(self, ctx: RouteContext) -> np.ndarray:
        return np.arange(ctx.arrivals.size, dtype=np.int64) % ctx.n_devices


class RandomRouter(Router):
    """Uniform-random assignment from the routing stream.

    Scalar and batch paths draw from the same generator state; NumPy's
    bounded-integer sampling consumes the stream identically one-at-a-time
    and batched, so the two are bit-identical (and pinned so).
    """

    name = "random"

    def route(self, ctx: RouteContext) -> np.ndarray:
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            out[i] = int(ctx.rng.integers(0, ctx.n_devices))
        return out

    def route_batch(self, ctx: RouteContext) -> np.ndarray:
        return ctx.rng.integers(0, ctx.n_devices, size=ctx.arrivals.size,
                                dtype=np.int64)


#: settled-prefix length past which :class:`_BacklogTracker` compacts a
#: device's completion list (once the prefix also spans at least half
#: the list, so each compaction frees >= half and stays amortized O(1))
_COMPACT_MIN_SETTLED = 64


class _BacklogTracker:
    """Per-device FIFO backlog under the dispatcher-level service model."""

    def __init__(self, n_devices: int) -> None:
        # per device: completion times of assigned-but-possibly-pending
        # requests (monotone per device, so popping the head suffices)
        self._completions: List[List[float]] = [[] for _ in range(n_devices)]
        self._head: List[int] = [0] * n_devices
        self.last_completion = np.zeros(n_devices)

    def settle(self, now: float) -> None:
        """Drop requests already completed by ``now``.

        Settled completions are compacted away once a device's settled
        prefix is both long and at least half its list — without the
        compaction the lists grow O(n_requests) over a long trace even
        though only the unsettled tail ever matters again.
        """
        for d, comps in enumerate(self._completions):
            head = self._head[d]
            while head < len(comps) and comps[head] <= now:
                head += 1
            if head >= _COMPACT_MIN_SETTLED and head * 2 >= len(comps):
                del comps[:head]
                head = 0
            self._head[d] = head

    def queue_len(self, d: int) -> int:
        """Requests of device ``d`` still in queue/service (post-settle)."""
        return len(self._completions[d]) - self._head[d]

    def assign(self, d: int, now: float, demand: float) -> None:
        """Book one request on device ``d`` arriving at ``now``."""
        start = max(now, float(self.last_completion[d]))
        done = start + demand
        self._completions[d].append(done)
        self.last_completion[d] = done


class _DenseBacklog:
    """Dense-array twin of :class:`_BacklogTracker` for the epoch path.

    Same service model, different data layout: queue lengths and last
    completion times live in ``(N,)`` arrays, and settling pops one
    completion min-heap shared by all devices instead of walking every
    device's list per request — amortized one heap pop per request over
    a whole trace.  Arithmetic is kept operation-for-operation identical
    to the scalar tracker (``max`` then ``+`` on Python floats), so the
    booked completion times — and therefore every downstream comparison
    — are bit-identical.
    """

    def __init__(self, n_devices: int) -> None:
        self.last_completion = np.zeros(n_devices)
        self.queue_len = np.zeros(n_devices, dtype=np.int64)
        self._heap: List[Tuple[float, int]] = []

    def settle(self, now: float) -> None:
        """Drop requests already completed by ``now`` (all devices)."""
        heap = self._heap
        queue_len = self.queue_len
        while heap and heap[0][0] <= now:
            queue_len[heapq.heappop(heap)[1]] -= 1

    def assign(self, d: int, now: float, demand: float) -> None:
        """Book one request on device ``d`` arriving at ``now``."""
        start = max(now, float(self.last_completion[d]))
        done = start + demand
        self.last_completion[d] = done
        self.queue_len[d] += 1
        heapq.heappush(self._heap, (done, d))


class JoinShortestQueueRouter(Router):
    """Send each request to the device with the fewest pending requests.

    The classic latency-oriented router: queue length is measured at the
    request's arrival instant under the dispatcher-level service model;
    ties break to the lowest device index (deterministic).
    """

    name = "jsq"

    def route(self, ctx: RouteContext) -> np.ndarray:
        tracker = _BacklogTracker(ctx.n_devices)
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            now = float(ctx.arrivals[i])
            tracker.settle(now)
            lengths = [tracker.queue_len(d) for d in range(ctx.n_devices)]
            choice = int(np.argmin(lengths))
            tracker.assign(choice, now, float(ctx.demands[i]))
            out[i] = choice
        return out

    def route_step_batch(self, ctx: RouteContext) -> np.ndarray:
        # inlined _DenseBacklog: jsq only ever reads the argmin of the
        # queue lengths, so last-completion times can stay Python floats
        # (same IEEE doubles, so booked completions stay bit-identical)
        n = int(ctx.arrivals.size)
        heap: List[Tuple[float, int]] = []
        heappush = heapq.heappush
        heappop = heapq.heappop
        queue_len = np.zeros(ctx.n_devices, dtype=np.int64)
        # bound-method argmin: same values, same lowest-index
        # tie-breaking as the scalar list scan
        qargmin = queue_len.argmin
        last = [0.0] * ctx.n_devices
        out = [0] * n
        arrivals = ctx.arrivals.tolist()
        demands = ctx.demands.tolist()
        for i in range(n):
            now = arrivals[i]
            while heap and heap[0][0] <= now:
                queue_len[heappop(heap)[1]] -= 1
            choice = int(qargmin())
            lc = last[choice]
            start = lc if lc > now else now  # == max(now, lc)
            done = start + demands[i]
            last[choice] = done
            queue_len[choice] += 1
            heappush(heap, (done, choice))
            out[i] = choice
        return np.asarray(out, dtype=np.int64)


class PowerAwareRouter(Router):
    """Prefer devices that are presumably still awake.

    A device counts as *awake* at an arrival when it is busy, or has
    been idle for less than ``awake_window`` seconds (the linger of a
    timeout policy; defaults to the break-even time of the device's
    deepest state, the 2-competitive timeout).  Among awake devices with
    queue room (fewer than ``max_queue`` pending requests) the shortest
    queue wins; when every awake device is full, the most recently used
    *sleeping* device is woken (bounding latency); when the whole fleet
    is asleep, the most recently used device is re-woken — consolidation
    that leaves the other devices' idle periods long enough to amortize
    deep sleeps.  Ties break to the lowest device index.
    """

    name = "power_aware"

    def __init__(
        self,
        awake_window: Optional[float] = None,
        max_queue: int = 4,
    ) -> None:
        if awake_window is not None and awake_window < 0:
            raise ValueError(f"awake_window must be >= 0, got {awake_window}")
        if int(max_queue) < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._awake_window = awake_window
        self._max_queue = int(max_queue)

    def resolve_window(self, device: PowerStateMachine) -> float:
        """The configured awake window, or the device's default."""
        if self._awake_window is not None:
            return float(self._awake_window)
        return device.break_even_time(
            device.deepest_state(), device.initial_state
        )

    def route(self, ctx: RouteContext) -> np.ndarray:
        window = self.resolve_window(ctx.device)
        tracker = _BacklogTracker(ctx.n_devices)
        out = np.empty(ctx.arrivals.size, dtype=np.int64)
        for i in range(ctx.arrivals.size):
            now = float(ctx.arrivals[i])
            tracker.settle(now)
            lengths = np.array(
                [tracker.queue_len(d) for d in range(ctx.n_devices)]
            )
            awake = (lengths > 0) | (now - tracker.last_completion < window)
            room = awake & (lengths < self._max_queue)
            if room.any():
                # shortest queue among awake devices with room, index ties
                masked = np.where(room, lengths, np.iinfo(np.int64).max)
                choice = int(np.argmin(masked))
            elif not awake.all():
                # awake devices are full (or none awake): wake the most
                # recently used sleeping device
                recency = np.where(~awake, tracker.last_completion, -np.inf)
                choice = int(np.argmax(recency))
            else:
                # every device awake and full: plain shortest queue
                choice = int(np.argmin(lengths))
            tracker.assign(choice, now, float(ctx.demands[i]))
            out[i] = choice
        return out

    def route_step_batch(self, ctx: RouteContext) -> np.ndarray:
        window = self.resolve_window(ctx.device)
        max_queue = self._max_queue
        n = int(ctx.arrivals.size)
        out = np.empty(n, dtype=np.int64)
        backlog = _DenseBacklog(ctx.n_devices)
        queue_len = backlog.queue_len
        last_completion = backlog.last_completion
        settle = backlog.settle
        assign = backlog.assign
        full = np.iinfo(np.int64).max
        arrivals = ctx.arrivals.tolist()
        demands = ctx.demands.tolist()
        for i in range(n):
            now = arrivals[i]
            settle(now)
            # provably equal to the scalar reference's
            # ``(queue_len > 0) | (now - last_completion < window)``:
            # queue_len > 0 implies an unsettled completion strictly past
            # ``now``, hence last_completion > now, hence (IEEE: x - y == 0
            # iff x == y) now - last_completion < 0 <= window already
            awake = now - last_completion < window
            room = awake & (queue_len < max_queue)
            if room.any():
                choice = int(np.argmin(np.where(room, queue_len, full)))
            elif not awake.all():
                recency = np.where(~awake, last_completion, -np.inf)
                choice = int(np.argmax(recency))
            else:
                choice = int(np.argmin(queue_len))
            assign(choice, now, demands[i])
            out[i] = choice
        return out


#: registry used by the sweep layer and the CLI ``--router`` flag
ROUTERS: Dict[str, Type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    RandomRouter.name: RandomRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
    PowerAwareRouter.name: PowerAwareRouter,
}


def make_router(name: str) -> Router:
    """Instantiate a registered router by name (CLI / sweep entry)."""
    try:
        return ROUTERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
        ) from None


class Dispatcher:
    """Split one arrival trace into per-device sub-traces.

    Parameters
    ----------
    router:
        Assignment policy (a :class:`Router` instance or registry name).
    n_devices:
        Fleet size (>= 1).
    device:
        The replicated device model (routers may consult its constants).
    service_time:
        Default per-request demand for the dispatcher-level service
        model, matching the simulator's default rule.
    seed:
        Routing-stream seed; a dispatch is a pure function of
        ``(trace, seed)``, so repeated dispatches are identical.
    """

    def __init__(
        self,
        router,
        n_devices: int,
        device: PowerStateMachine,
        service_time: float = 0.5,
        seed: int = 0,
    ) -> None:
        if isinstance(router, str):
            router = make_router(router)
        if not isinstance(router, Router):
            raise TypeError(f"router must be a Router or name, got {router!r}")
        if int(n_devices) < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        if service_time <= 0:
            raise ValueError(f"service_time must be > 0, got {service_time}")
        self.router = router
        self.n_devices = int(n_devices)
        self.device = device
        self.service_time = float(service_time)
        self.seed = int(seed)

    def _context(self, trace: Trace) -> RouteContext:
        return RouteContext(
            arrivals=trace.arrival_times,
            demands=resolve_demands(trace, self.service_time),
            n_devices=self.n_devices,
            device=self.device,
            rng=np.random.default_rng(self.seed),
        )

    def assignments(self, trace: Trace, vectorized: bool = True) -> np.ndarray:
        """Per-request device assignments.

        ``vectorized=True`` uses :meth:`Router.route_batch` when the
        router offers it (bit-identical to the scalar path for stateless
        routers); ``vectorized=False`` forces the scalar reference loop.
        """
        ctx = self._context(trace)
        if vectorized:
            batch = self.router.route_batch(ctx)
            if batch is not None:
                return np.asarray(batch, dtype=np.int64)
            # fresh rng per stage keeps each path a pure function of
            # (trace, seed); arrays are reused as-is
            ctx = dataclasses.replace(
                ctx, rng=np.random.default_rng(self.seed)
            )
            stepped = self.router.route_step_batch(ctx)
            if stepped is not None:
                return np.asarray(stepped, dtype=np.int64)
            ctx = dataclasses.replace(
                ctx, rng=np.random.default_rng(self.seed)
            )
        return np.asarray(self.router.route(ctx), dtype=np.int64)

    def dispatch(self, trace: Trace, vectorized: bool = True) -> List[Trace]:
        """Route and split: one sub-trace per device, full shared window."""
        return trace.split(
            self.assignments(trace, vectorized=vectorized),
            n_parts=self.n_devices,
        )
