"""One fleet cell end to end: dispatch, simulate each device, aggregate.

:func:`run_fleet` is the fleet counterpart of
:func:`~repro.runtime.eventsim.simulate_trace`: route the shared arrival
stream across N device replicas, evaluate every sub-trace on the
single-device engine, and fold the per-device reports into a
:class:`~repro.fleet.report.FleetReport`.

Three engines, mirroring the repo's batched/scalar split:

- ``engine="auto"`` — the per-trace fast path.  Routers assign with
  their vectorized paths (``route_batch`` for stateless routers,
  ``route_step_batch`` for the queue-aware ones); the per-device
  sub-traces then ride
  :func:`~repro.runtime.eventsim.simulate_traces_batch` — the
  vectorized busy-period kernel per sub-trace for stateless policies,
  the lock-step cross-replication engine over all N devices at once for
  stateful batchable policies (adaptive, predictive), and the scalar
  loop for everything else.
- ``engine="flat"`` — the production sweep path: all sub-traces of the
  fleet run (and, via :func:`run_fleet_batch`, of *every seed of a
  sweep cell*) are flattened into one padded
  :func:`~repro.runtime.eventsim.run_step_batched` invocation, so a
  whole cell costs one kernel call instead of N x R per-trace runs.
- ``engine="scalar"`` — the reference dispatcher: the router's scalar
  assignment loop plus the scalar :class:`~repro.sim.DPMSimulator` event
  loop per device.  tests/test_fleet_sweep.py pins the fast engines
  against it field-for-field (rel tol <= 1e-9) on the fleet aggregate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..device import PowerStateMachine
from ..runtime.eventsim import run_step_batched, simulate_traces_batch
from ..runtime.telemetry import TELEMETRY
from ..sim.policy_api import EventPolicy
from ..sim.simulator import DPMSimulator
from ..workload.faults import resolve_fault_schedule
from ..workload.trace import Trace
from .dispatch import Dispatcher, FailoverConfig, OverloadConfig, Router
from .report import FleetReport, build_fleet_report

#: engines accepted by :func:`run_fleet`
ENGINES = ("auto", "flat", "scalar")


def _landed_fraction(outcome) -> float:
    """Fraction of offered requests that landed (1.0 for an empty
    trace) — the deadline-free goodput of a failover outcome."""
    n = int(outcome.arrivals.size)
    return float(outcome.landed.sum()) / n if n else 1.0


def run_fleet(
    device: PowerStateMachine,
    policy: EventPolicy,
    trace: Trace,
    router: Router,
    n_devices: int,
    service_time: float = 0.5,
    oracle: bool = False,
    route_seed: int = 0,
    engine: str = "auto",
    keep_latencies: bool = True,
    faults=None,
    failover: Optional[FailoverConfig] = None,
    fault_seed: Optional[int] = None,
    overload: Optional[OverloadConfig] = None,
) -> FleetReport:
    """Simulate ``n_devices`` replicas of ``device`` sharing ``trace``.

    Each replica runs ``policy`` independently (the policy object is
    reused sequentially; every engine resets it per run, identical to
    how sweep cells share policy instances).  Deterministic given
    ``(trace, route_seed)`` for either engine.

    ``faults`` injects device failures: a
    :class:`~repro.workload.FaultSchedule` or a
    :class:`~repro.workload.FaultProcess` (realized over the trace
    window with ``fault_seed``, defaulting to ``route_seed``).  Routing
    then goes through the failure-aware engines — the vectorized
    epoch-advance path for ``auto``/``flat``, the scalar reference loop
    for ``scalar``, pinned bit-identical — honouring ``failover``
    (default :class:`~repro.fleet.dispatch.FailoverConfig`), and the
    report carries availability/retry/drop/inflation metrics.

    ``overload`` switches dispatch to the overload-aware engines
    (circuit breakers, fleet-wide retry budget, deadline shedding,
    brownout-inflated demands); give the failover shape inside
    :class:`~repro.fleet.dispatch.OverloadConfig` then, not via
    ``failover``.  A schedule with brownout (finite-severity) intervals
    upgrades to the overload engines automatically — the plain failover
    path has no notion of a slow-but-alive device.  The report then
    additionally carries shed counts, goodput, SLO attainment, and
    breaker trips.

    The fleet quantiles always merge the exact per-device completion
    streams; ``keep_latencies=False`` drops the raw arrays from the
    retained per-device reports *after* that merge (the fleet sweep
    uses it so worker results pickle small).
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if overload is not None and failover is not None:
        raise ValueError(
            "give the failover shape inside OverloadConfig "
            "(overload.failover), not via the failover argument too"
        )
    if engine == "flat":
        return run_fleet_batch(
            device, policy, [trace], router, n_devices,
            service_time=service_time, oracle=oracle,
            route_seeds=[route_seed], keep_latencies=keep_latencies,
            faults=faults, failover=failover,
            fault_seeds=None if fault_seed is None else [fault_seed],
            overload=overload,
        )[0]
    dispatcher = Dispatcher(
        router, n_devices, device, service_time=service_time, seed=route_seed,
    )
    fault_kwargs = {"n_offered": int(trace.arrival_times.size)}
    with TELEMETRY.span("route", cat="fleet", engine=engine,
                        n_devices=n_devices):
        schedule = None
        if faults is not None:
            schedule = resolve_fault_schedule(
                faults, n_devices, trace.duration,
                seed=route_seed if fault_seed is None else int(fault_seed),
            )
        if overload is not None or (
            schedule is not None and schedule.has_brownouts
        ):
            cfg = overload if overload is not None else OverloadConfig(
                failover=failover if failover is not None
                else FailoverConfig()
            )
            sub_traces, outcome = dispatcher.dispatch_with_overload(
                trace, schedule, overload=cfg,
                vectorized=engine == "auto",
            )
            fault_kwargs.update(
                availability=1.0 if schedule is None
                else float(schedule.availability().mean()),
                n_retries=outcome.n_retries,
                n_dropped=outcome.n_dropped,
                failover_latency_inflation=outcome.latency_inflation,
                n_shed=outcome.n_shed,
                n_budget_shed=outcome.n_budget_shed,
                goodput=outcome.goodput,
                slo_attainment=outcome.slo_attainment,
                n_breaker_trips=outcome.n_breaker_trips,
            )
        elif schedule is None:
            sub_traces = dispatcher.dispatch(
                trace, vectorized=engine == "auto"
            )
        else:
            sub_traces, outcome = dispatcher.dispatch_with_faults(
                trace, schedule,
                failover=failover if failover is not None
                else FailoverConfig(),
                vectorized=engine == "auto",
            )
            fault_kwargs.update(
                availability=float(schedule.availability().mean()),
                n_retries=outcome.n_retries,
                n_dropped=outcome.n_dropped,
                failover_latency_inflation=outcome.latency_inflation,
                # no deadlines: every landed request is good, so
                # goodput is exactly the dispatched fraction
                goodput=_landed_fraction(outcome),
            )
    with TELEMETRY.span("kernel", cat="fleet", engine=engine,
                        n_traces=len(sub_traces)):
        if engine == "auto":
            reports = simulate_traces_batch(
                device, policy, sub_traces,
                service_time=service_time, oracle=oracle,
            )
        else:
            reports = [
                DPMSimulator(device, policy,
                             service_time=service_time, oracle=oracle).run(sub)
                for sub in sub_traces
            ]
    with TELEMETRY.span("report", cat="fleet", n_devices=n_devices):
        return build_fleet_report(
            router=dispatcher.router.name,
            policy=policy.name,
            home_power=device.state(device.initial_state).power,
            reports=reports,
            keep_latencies=keep_latencies,
            **fault_kwargs,
        )


def run_fleet_batch(
    device: PowerStateMachine,
    policy: EventPolicy,
    traces: Sequence[Trace],
    router: Router,
    n_devices: int,
    service_time: float = 0.5,
    oracle: bool = False,
    route_seeds: Optional[Sequence[int]] = None,
    keep_latencies: bool = True,
    faults=None,
    failover: Optional[FailoverConfig] = None,
    fault_seeds: Optional[Sequence[int]] = None,
    overload: Optional[OverloadConfig] = None,
) -> List[FleetReport]:
    """R seeded fleet runs of one cell as a single flattened kernel call.

    The whole-cell engine behind ``engine="flat"`` and the fleet sweep:
    every trace is dispatched with the router's vectorized path, and the
    R x N per-device sub-traces are flattened into *one*
    :func:`~repro.runtime.eventsim.run_step_batched` invocation
    (``allow_stateless=True`` lets gap-mode policies ride the lock-step
    rounds; step-mode policies use their own hooks).  Each sub-trace's
    report is a pure function of its own trace, so per-seed fleet
    reports are independent of which seeds share the batch — the
    chunking-invariance guarantee the sweep runner relies on.

    Policies outside both batch families fall back to per-seed
    :func:`run_fleet` on the ``auto`` engine (same reports, no
    flattening to be had).  ``route_seeds`` defaults to 0 for every
    trace, matching :func:`run_fleet`'s default; with ``faults`` given,
    ``fault_seeds`` (defaulting to the route seeds) realize a
    :class:`~repro.workload.FaultProcess` independently per trace, and
    each flattened sub-trace carries its failover-delayed dispatch
    instants — per-seed reports remain pure functions of their own
    ``(trace, route_seed, fault_seed)``, preserving chunking-invariance.
    ``overload`` (or a brownout-bearing schedule) routes each trace
    through the overload-aware dispatch engines, exactly as in
    :func:`run_fleet`.
    """
    if overload is not None and failover is not None:
        raise ValueError(
            "give the failover shape inside OverloadConfig "
            "(overload.failover), not via the failover argument too"
        )
    traces = list(traces)
    if not traces:
        return []
    if route_seeds is None:
        route_seeds = [0] * len(traces)
    route_seeds = [int(s) for s in route_seeds]
    if len(route_seeds) != len(traces):
        raise ValueError(
            f"route_seeds length {len(route_seeds)} != "
            f"traces length {len(traces)}"
        )
    if fault_seeds is None:
        fault_seeds = route_seeds
    fault_seeds = [int(s) for s in fault_seeds]
    if len(fault_seeds) != len(traces):
        raise ValueError(
            f"fault_seeds length {len(fault_seeds)} != "
            f"traces length {len(traces)}"
        )
    router_name = None
    sub_traces: List[Trace] = []
    fault_kwargs: List[dict] = []
    with TELEMETRY.span("route", cat="fleet", engine="flat",
                        n_devices=n_devices, n_traces=len(traces)):
        for trace, seed, fseed in zip(traces, route_seeds, fault_seeds):
            dispatcher = Dispatcher(
                router, n_devices, device,
                service_time=service_time, seed=seed,
            )
            router_name = dispatcher.router.name
            n_offered = int(trace.arrival_times.size)
            schedule = None
            if faults is not None:
                schedule = resolve_fault_schedule(
                    faults, n_devices, trace.duration, seed=fseed,
                )
            if overload is not None or (
                schedule is not None and schedule.has_brownouts
            ):
                cfg = overload if overload is not None else OverloadConfig(
                    failover=failover if failover is not None
                    else FailoverConfig()
                )
                subs, outcome = dispatcher.dispatch_with_overload(
                    trace, schedule, overload=cfg,
                )
                sub_traces.extend(subs)
                fault_kwargs.append({
                    "availability": 1.0 if schedule is None
                    else float(schedule.availability().mean()),
                    "n_retries": outcome.n_retries,
                    "n_dropped": outcome.n_dropped,
                    "failover_latency_inflation": outcome.latency_inflation,
                    "n_shed": outcome.n_shed,
                    "n_budget_shed": outcome.n_budget_shed,
                    "goodput": outcome.goodput,
                    "slo_attainment": outcome.slo_attainment,
                    "n_breaker_trips": outcome.n_breaker_trips,
                    "n_offered": n_offered,
                })
            elif schedule is None:
                sub_traces.extend(dispatcher.dispatch(trace))
                fault_kwargs.append({"n_offered": n_offered})
            else:
                subs, outcome = dispatcher.dispatch_with_faults(
                    trace, schedule,
                    failover=failover if failover is not None
                    else FailoverConfig(),
                )
                sub_traces.extend(subs)
                fault_kwargs.append({
                    "availability": float(schedule.availability().mean()),
                    "n_retries": outcome.n_retries,
                    "n_dropped": outcome.n_dropped,
                    "failover_latency_inflation": outcome.latency_inflation,
                    "goodput": _landed_fraction(outcome),
                    "n_offered": n_offered,
                })
    with TELEMETRY.span("kernel", cat="fleet", engine="flat",
                        n_traces=len(sub_traces)):
        reports = run_step_batched(
            device, policy, sub_traces,
            service_time=service_time, oracle=oracle, allow_stateless=True,
        )
    if reports is None:
        return [
            run_fleet(
                device, policy, trace, router, n_devices,
                service_time=service_time, oracle=oracle, route_seed=seed,
                engine="auto", keep_latencies=keep_latencies,
                faults=faults, failover=failover, fault_seed=fseed,
                overload=overload,
            )
            for trace, seed, fseed in zip(traces, route_seeds, fault_seeds)
        ]
    home_power = device.state(device.initial_state).power
    with TELEMETRY.span("report", cat="fleet", n_devices=n_devices,
                        n_reports=len(traces)):
        return [
            build_fleet_report(
                router=router_name,
                policy=policy.name,
                home_power=home_power,
                reports=reports[r * n_devices:(r + 1) * n_devices],
                keep_latencies=keep_latencies,
                **fault_kwargs[r],
            )
            for r in range(len(traces))
        ]
