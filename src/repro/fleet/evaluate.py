"""One fleet cell end to end: dispatch, simulate each device, aggregate.

:func:`run_fleet` is the fleet counterpart of
:func:`~repro.runtime.eventsim.simulate_trace`: route the shared arrival
stream across N device replicas, evaluate every sub-trace on the
single-device engine, and fold the per-device reports into a
:class:`~repro.fleet.report.FleetReport`.

Two engines, mirroring the repo's batched/scalar split:

- ``engine="auto"`` — the production path.  Stateless routers partition
  the trace with NumPy ops; the per-device sub-traces then ride
  :func:`~repro.runtime.eventsim.simulate_traces_batch` — the
  vectorized busy-period kernel per sub-trace for stateless policies,
  the lock-step cross-replication engine over all N devices at once for
  stateful batchable policies (adaptive, predictive), and the scalar
  loop for everything else.
- ``engine="scalar"`` — the reference dispatcher: the router's scalar
  assignment loop plus the scalar :class:`~repro.sim.DPMSimulator` event
  loop per device.  tests/test_fleet_sweep.py pins the two engines
  field-for-field (rel tol <= 1e-9) on the fleet aggregate.
"""

from __future__ import annotations

from ..device import PowerStateMachine
from ..runtime.eventsim import simulate_traces_batch
from ..sim.policy_api import EventPolicy
from ..sim.simulator import DPMSimulator
from ..workload.trace import Trace
from .dispatch import Dispatcher, Router
from .report import FleetReport, build_fleet_report

#: engines accepted by :func:`run_fleet`
ENGINES = ("auto", "scalar")


def run_fleet(
    device: PowerStateMachine,
    policy: EventPolicy,
    trace: Trace,
    router: Router,
    n_devices: int,
    service_time: float = 0.5,
    oracle: bool = False,
    route_seed: int = 0,
    engine: str = "auto",
    keep_latencies: bool = True,
) -> FleetReport:
    """Simulate ``n_devices`` replicas of ``device`` sharing ``trace``.

    Each replica runs ``policy`` independently (the policy object is
    reused sequentially; every engine resets it per run, identical to
    how sweep cells share policy instances).  Deterministic given
    ``(trace, route_seed)`` for either engine.

    The fleet quantiles always merge the exact per-device completion
    streams; ``keep_latencies=False`` drops the raw arrays from the
    retained per-device reports *after* that merge (the fleet sweep
    uses it so worker results pickle small).
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    dispatcher = Dispatcher(
        router, n_devices, device, service_time=service_time, seed=route_seed,
    )
    sub_traces = dispatcher.dispatch(trace, vectorized=engine == "auto")
    if engine == "auto":
        reports = simulate_traces_batch(
            device, policy, sub_traces,
            service_time=service_time, oracle=oracle,
        )
    else:
        reports = [
            DPMSimulator(device, policy,
                         service_time=service_time, oracle=oracle).run(sub)
            for sub in sub_traces
        ]
    return build_fleet_report(
        router=dispatcher.router.name,
        policy=policy.name,
        home_power=device.state(device.initial_state).power,
        reports=reports,
        keep_latencies=keep_latencies,
    )
