"""Fleet scenario sweeps: (fleet size x router x policy) cell grids.

:class:`FleetSweepRunner` is the fleet counterpart of
:class:`~repro.runtime.SimSweepRunner`: it fans the full
(fleet size x router x DPM policy) grid, with ``n_traces`` seeded
replications of the shared arrival stream per cell, across the executor
layer (:mod:`repro.runtime.executor`) and aggregates each cell into
mean +- bootstrap CI.  Work units are ``(cell, seed-chunk)`` pairs built
from picklable values only — traces regenerate inside the worker from
:class:`~repro.runtime.simsweep.TraceSpec` recipes and routers
reinstantiate from registry names — so per-seed fleet reports are
identical for every ``(chunk_size, n_jobs)`` combination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..analysis.ascii_plot import format_table
from ..analysis.bootstrap import CI, bootstrap_ci
from ..device import get_preset
from ..runtime.checkpoint import run_chunks_checkpointed, spec_hash
from ..runtime.executor import get_executor, resolve_n_jobs
from ..runtime.simsweep import PolicySpec, TraceSpec, estimate_request_seconds
from ..runtime.telemetry import TELEMETRY
from ..runtime.verify import (
    InvariantViolation,
    check_fleet_report,
    shadow_verify_chunks,
    write_diagnostics_bundle,
)
from ..workload.faults import FaultProcess, FaultSchedule
from .dispatch import (
    ROUTERS,
    FailoverConfig,
    OverloadConfig,
    Router,
    make_router,
)
from .evaluate import run_fleet, run_fleet_batch
from .report import FleetReport

#: rough wall seconds to route one request through a router that only
#: offers the scalar reference loop (per-request Python with a full
#: per-device queue scan)
SCALAR_ROUTE_SECONDS_PER_REQUEST = 2e-5

#: rough wall seconds per request for queue-aware routers on the
#: epoch-advance ``route_step_batch`` path (dense backlog arrays + a
#: shared completion heap; still one Python round per arrival, hence
#: not free like the closed-form ``route_batch`` routers)
STEP_ROUTE_SECONDS_PER_REQUEST = 5e-6


def route_seconds_per_request(router_cls: Type[Router]) -> float:
    """Estimated routing cost of one request on the fastest route path.

    The :meth:`~repro.fleet.dispatch.Dispatcher.assignments` cascade in
    cost-model form: closed-form ``route_batch`` routers cost ~nothing,
    ``route_step_batch`` routers pay the epoch-advance rate, and
    everything else pays the scalar reference-loop rate.  Keeping the
    split here stops :func:`~repro.runtime.executor.resolve_n_jobs`'s
    serial-degrade heuristic from wrongly forcing in-process execution
    on cells whose routing is actually fast.
    """
    if router_cls.route_batch is not Router.route_batch:
        return 0.0
    if router_cls.route_step_batch is not Router.route_step_batch:
        return STEP_ROUTE_SECONDS_PER_REQUEST
    return SCALAR_ROUTE_SECONDS_PER_REQUEST

#: offset decorrelating the routing stream from the trace-generation
#: stream (both are realized from the replication seed)
ROUTE_SEED_OFFSET = 1_000_003

#: offset decorrelating the fault-injection stream from both the
#: trace-generation and routing streams — all three realize from the
#: replication seed, so injected nondeterminism stays deterministic
#: per replication yet statistically independent of the workload
FAULT_SEED_OFFSET = 2_000_003


@dataclass(frozen=True)
class FleetSweepSpec:
    """The full (fleet size x router x policy) grid of one fleet sweep.

    One device preset is replicated at every fleet size; one
    :class:`~repro.runtime.simsweep.TraceSpec` describes the shared
    arrival stream (its rate is *fleet-wide* — per-device load shrinks
    as the fleet grows, which is exactly the axis the sweep explores).
    """

    device: str
    fleet_sizes: Tuple[int, ...]
    routers: Tuple[str, ...]
    policies: Tuple[PolicySpec, ...]
    trace: TraceSpec
    n_traces: int = 8
    seed: int = 0
    seed_stride: int = 101
    service_time: float = 0.5
    #: optional fault injection: a :class:`~repro.workload.FaultProcess`
    #: recipe (realized per fleet size and replication), or — for
    #: single-fleet-size sweeps — a concrete
    #: :class:`~repro.workload.FaultSchedule`
    faults: Any = None
    #: failover behaviour when routing under faults
    failover: FailoverConfig = FailoverConfig()
    #: optional overload protection (circuit breakers, retry budget,
    #: deadline shedding); also engaged automatically when ``faults``
    #: carries brownout (finite-severity) intervals
    overload: Optional[OverloadConfig] = None

    @property
    def uses_overload(self) -> bool:
        """True when cells route through the overload-aware engines."""
        if self.overload is not None:
            return True
        if isinstance(self.faults, FaultProcess):
            return math.isfinite(self.faults.severity)
        if isinstance(self.faults, FaultSchedule):
            return self.faults.has_brownouts
        return False

    def __post_init__(self) -> None:
        if not (self.fleet_sizes and self.routers and self.policies):
            raise ValueError("need at least one fleet size, router, and policy")
        if any(int(n) < 1 for n in self.fleet_sizes):
            raise ValueError(f"fleet sizes must be >= 1, got {self.fleet_sizes}")
        for name in self.routers:
            if name not in ROUTERS:
                raise ValueError(
                    f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
                )
        if self.n_traces < 1:
            raise ValueError(f"n_traces must be >= 1, got {self.n_traces}")
        if self.seed_stride < 1:
            raise ValueError(f"seed_stride must be >= 1, got {self.seed_stride}")
        if self.service_time <= 0:
            raise ValueError(f"service_time must be > 0, got {self.service_time}")
        if not isinstance(self.failover, FailoverConfig):
            raise ValueError(
                f"failover must be a FailoverConfig, got {self.failover!r}"
            )
        if self.overload is not None:
            if not isinstance(self.overload, OverloadConfig):
                raise ValueError(
                    f"overload must be an OverloadConfig or None, "
                    f"got {self.overload!r}"
                )
            if self.failover != self.overload.failover:
                raise ValueError(
                    "with overload given, the failover shape lives in "
                    "overload.failover; leave the spec's failover at its "
                    "default or set both to the same config"
                )
        self._validate_faults()

    def _validate_faults(self) -> None:
        """Reject degenerate fault configs before they cost a sweep.

        ``FaultProcess`` already refuses nonsensical parameters
        (MTBF/MTTR <= 0, a whole-fleet ``start_down`` cohort); the spec
        layer adds the checks that need sweep context — a fleet that
        churns faster than it serves, or a concrete schedule that
        starts with every device dead.
        """
        faults = self.faults
        if faults is None:
            return
        if isinstance(faults, FaultProcess):
            if faults.mttr <= 0:
                raise ValueError(f"MTTR must be > 0, got {faults.mttr}")
            if faults.mtbf < self.service_time:
                raise ValueError(
                    f"MTBF {faults.mtbf} is shorter than a single request's "
                    f"service demand {self.service_time}: every device would "
                    f"fail mid-request — not a meaningful fault scenario"
                )
            return
        if isinstance(faults, FaultSchedule):
            sizes = set(int(n) for n in self.fleet_sizes)
            if sizes != {faults.n_devices}:
                raise ValueError(
                    f"a concrete FaultSchedule ({faults.n_devices} devices) "
                    f"only fits a single-fleet-size sweep of that size, got "
                    f"fleet_sizes={self.fleet_sizes}; pass a FaultProcess "
                    f"recipe to sweep fleet sizes"
                )
            if faults.all_down_at(0.0):
                raise ValueError(
                    "fault schedule has all devices down at t=0 — no "
                    "surviving device to fail over to; stagger the outage"
                )
            return
        raise ValueError(
            f"faults must be a FaultProcess, FaultSchedule, or None, "
            f"got {faults!r}"
        )

    def seeds(self) -> List[int]:
        """Replication seeds, shared across cells so comparisons pair."""
        return [self.seed + k * self.seed_stride for k in range(self.n_traces)]


@dataclass
class FleetCellResult:
    """One (fleet size, router, policy) cell over its trace replications."""

    n_devices: int
    router: str
    policy: str
    reports: List[FleetReport]

    def _ci(self, attr: str, confidence: float = 0.95) -> CI:
        values = np.array([getattr(r, attr) for r in self.reports])
        return bootstrap_ci(values, confidence=confidence)

    def power_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication fleet mean power."""
        return self._ci("mean_power", confidence)

    def saving_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication saving vs. an all-always-on fleet."""
        return self._ci("energy_saving_ratio", confidence)

    def p99_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication p99 latency of the merged stream."""
        return self._ci("p99_latency", confidence)

    @property
    def mean_shutdowns(self) -> float:
        return float(np.mean([r.n_shutdowns for r in self.reports]))

    @property
    def mean_imbalance(self) -> float:
        """Across-replication mean of the max/mean request imbalance."""
        return float(np.mean([r.load_imbalance for r in self.reports]))


@dataclass
class FleetSweepResult:
    """All cells of one sweep, in (fleet size, router, policy) grid order."""

    spec: FleetSweepSpec
    cells: List[FleetCellResult] = field(default_factory=list)
    #: how the runner executed the grid: requested vs effective job
    #: count, the degrade decision, and the per-chunk work estimate
    execution: Dict[str, Any] = field(default_factory=dict)

    def cell(self, n_devices: int, router: str, policy: str) -> FleetCellResult:
        """Look up one cell by its coordinates."""
        for c in self.cells:
            if (c.n_devices, c.router, c.policy) == (n_devices, router, policy):
                return c
        raise KeyError(f"no cell ({n_devices!r}, {router!r}, {policy!r})")

    def render(self) -> str:
        headers = [
            "fleet", "router", "policy", "power (W)", "+-", "saving",
            "p50 lat", "p99 lat", "shutdowns", "imbalance",
        ]
        faulty = self.spec.faults is not None
        if faulty:
            headers += ["avail", "retries", "dropped"]
        overloaded = self.spec.uses_overload
        if overloaded:
            headers += ["shed", "goodput"]
        rows = []
        for c in self.cells:
            power = c.power_ci()
            p50 = float(np.mean([r.p50_latency for r in c.reports]))
            p99 = c.p99_ci()
            row = [
                c.n_devices, c.router, c.policy,
                round(power.estimate, 4), round(power.half_width, 4),
                round(c.saving_ci().estimate, 4),
                round(p50, 3), round(p99.estimate, 3),
                round(c.mean_shutdowns, 1), round(c.mean_imbalance, 2),
            ]
            if faulty:
                row += [
                    round(float(np.mean(
                        [r.availability for r in c.reports])), 4),
                    round(float(np.mean(
                        [r.n_retries for r in c.reports])), 1),
                    round(float(np.mean(
                        [r.n_dropped for r in c.reports])), 1),
                ]
            if overloaded:
                row += [
                    round(float(np.mean(
                        [r.n_shed for r in c.reports])), 1),
                    round(float(np.mean(
                        [r.goodput for r in c.reports])), 4),
                ]
            rows.append(row)
        return format_table(
            headers, rows,
            title=f"FLEET-SWEEP: {self.spec.device} fleet scenario grid "
                  f"({self.spec.n_traces} traces/cell, "
                  f"trace={self.spec.trace.name})",
        )


def run_fleet_chunk(
    device_name: str,
    n_devices: int,
    router_name: str,
    policy_spec: PolicySpec,
    trace_spec: TraceSpec,
    service_time: float,
    seeds: Sequence[int],
    faults: Any = None,
    failover: FailoverConfig = FailoverConfig(),
    overload: Optional[OverloadConfig] = None,
) -> List[FleetReport]:
    """One (cell, seed-chunk) work unit — module-level and built from
    picklable values only, so the executor can ship it to a worker.
    The chunk's (seed x device) sub-traces flatten into a single
    :func:`~repro.fleet.evaluate.run_fleet_batch` kernel invocation;
    each seed's fleet report is still a pure function of the arguments
    (every sub-trace resolves independently inside the batch), so
    results are identical for every ``(chunk_size, n_jobs)``.  The
    retained per-device reports are stripped of their raw latency
    arrays (the merged-stream quantiles are already folded) so the
    pickled results stay small.

    With ``faults`` given, each replication's fault stream realizes
    from ``seed + FAULT_SEED_OFFSET`` — deterministic per replication,
    decorrelated from both its trace and routing streams, and
    independent of how replications are chunked."""
    with TELEMETRY.span("chunk", cat="sweep", kind="fleet",
                        device=device_name, n_devices=n_devices,
                        router=router_name, policy=policy_spec.label,
                        seeds=list(seeds)):
        device = get_preset(device_name)
        return run_fleet_batch(
            device, policy_spec.policy,
            [trace_spec.realize(seed) for seed in seeds],
            make_router(router_name), n_devices,
            service_time=service_time, oracle=policy_spec.oracle,
            route_seeds=[seed + ROUTE_SEED_OFFSET for seed in seeds],
            keep_latencies=False,
            faults=faults,
            failover=None if overload is not None else failover,
            fault_seeds=[seed + FAULT_SEED_OFFSET for seed in seeds],
            overload=overload,
        )


def reference_fleet_chunk(
    device_name: str,
    n_devices: int,
    router_name: str,
    policy_spec: PolicySpec,
    trace_spec: TraceSpec,
    service_time: float,
    seeds: Sequence[int],
    faults: Any = None,
    failover: FailoverConfig = FailoverConfig(),
    overload: Optional[OverloadConfig] = None,
) -> List[FleetReport]:
    """Scalar reference path for one :func:`run_fleet_chunk` work unit.

    Per-seed ``engine="scalar"`` fleet runs — the reference dispatcher
    loop every vectorized fleet path is pinned against in the test
    suite, with the same per-seed route/fault stream derivation the
    fast chunk uses.  Shadow verification compares these
    field-for-field against the flattened-kernel results.
    """
    device = get_preset(device_name)
    return [
        run_fleet(
            device, policy_spec.policy, trace_spec.realize(seed),
            make_router(router_name), n_devices,
            service_time=service_time, oracle=policy_spec.oracle,
            route_seed=seed + ROUTE_SEED_OFFSET, engine="scalar",
            keep_latencies=False, faults=faults,
            failover=None if overload is not None else failover,
            fault_seed=seed + FAULT_SEED_OFFSET,
            overload=overload,
        )
        for seed in seeds
    ]


class FleetSweepRunner:
    """Chunked executor fan-out over the fleet cell grid.

    Parameters
    ----------
    chunk_size:
        Trace replications per work unit.
    n_jobs:
        Worker processes to shard (cell, chunk) units across (1 = serial).
    timeout:
        Per-chunk wall-second bound when collecting pool results; a
        chunk exceeding it (hung or silently-dead worker) reruns
        in-process (see :meth:`MultiprocessExecutor.submit_all`).
    max_retries:
        Pool resubmissions of a chunk whose worker raised, before the
        chunk degrades to an in-process rerun.
    retry_backoff:
        Base of the capped-exponential sleep between retries.
    checkpoint:
        Path of a chunk-result journal: completed chunks are recorded as
        they finish and skipped on the next run with the same spec and
        chunk size — resumed results are bit-identical to an
        uninterrupted run.
    verify_fraction:
        Fraction of work units to shadow-verify: each sampled chunk is
        re-run per-seed through the ``engine="scalar"`` reference
        dispatcher and compared field-for-field (rel <= 1e-9).  The
        sample is a deterministic function of the spec, so resumed and
        fresh runs verify the same cells.  A divergence raises
        :class:`~repro.runtime.verify.InvariantViolation`; the sample
        and outcome land in the result's ``execution["verification"]``.
    diagnostics_dir:
        Directory for minimal-repro JSON bundles written on invariant
        violations, shadow divergences, and unrecoverable chunk
        failures.
    """

    def __init__(self, chunk_size: int = 4, n_jobs: int = 1,
                 timeout: Optional[float] = None, max_retries: int = 0,
                 retry_backoff: float = 0.5,
                 checkpoint: Optional[str] = None,
                 verify_fraction: float = 0.0,
                 diagnostics_dir: Optional[str] = None) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if not 0.0 <= float(verify_fraction) <= 1.0:
            raise ValueError(
                f"verify_fraction must be in [0, 1], got {verify_fraction}"
            )
        self.chunk_size = int(chunk_size)
        self.n_jobs = int(n_jobs)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.checkpoint = checkpoint
        self.verify_fraction = float(verify_fraction)
        self.diagnostics_dir = diagnostics_dir

    def estimate_chunk_seconds(self, spec: FleetSweepSpec) -> float:
        """Mean estimated wall seconds of one (cell, seed-chunk) unit.

        Same request-count x engine-cost heuristic as
        :meth:`~repro.runtime.SimSweepRunner.estimate_chunk_seconds`,
        plus the routing cost via :func:`route_seconds_per_request`:
        queue-aware routers advance one arrival per Python round even
        on the epoch-advance path, which still dominates the batched
        simulation engines (at a ~4x lower rate than the scalar loop).
        The shared arrival stream's request count is fleet-wide, so the
        per-chunk work does not grow with the fleet-size axis.
        """
        chunk = min(self.chunk_size, spec.n_traces)
        requests = spec.trace.dist.rate() * spec.trace.duration
        per_request_rates = [
            route_seconds_per_request(ROUTERS[name]) for name in spec.routers
        ]
        if spec.faults is not None or spec.overload is not None:
            # failure- and overload-aware routing run every router
            # through the epoch-advance engine — closed-form routers
            # lose their free path and pay at least the per-arrival
            # Python round
            per_request_rates = [
                max(rate, STEP_ROUTE_SECONDS_PER_REQUEST)
                for rate in per_request_rates
            ]
        per_route = [chunk * requests * rate for rate in per_request_rates]
        per_policy = [
            estimate_request_seconds(p.policy, chunk * requests)
            for p in spec.policies
        ]
        return float(np.mean(per_route) + np.mean(per_policy))

    def run(self, spec: FleetSweepSpec) -> FleetSweepResult:
        """Run the full grid; deterministic for any (chunk_size, n_jobs)."""
        with TELEMETRY.metrics_scope() as metrics:
            with TELEMETRY.span("sweep", cat="sweep", kind="fleet",
                                n_traces=spec.n_traces,
                                chunk_size=self.chunk_size,
                                n_jobs=self.n_jobs):
                result = self._run(spec)
        result.execution["metrics"] = metrics.snapshot()
        return result

    def _run(self, spec: FleetSweepSpec) -> FleetSweepResult:
        seeds = spec.seeds()
        chunks = [
            seeds[i:i + self.chunk_size]
            for i in range(0, len(seeds), self.chunk_size)
        ]
        cell_keys: List[Tuple[int, str, str]] = []
        tasks = []
        for n_devices in spec.fleet_sizes:
            for router_name in spec.routers:
                for policy_spec in spec.policies:
                    cell_keys.append(
                        (int(n_devices), router_name, policy_spec.label)
                    )
                    for chunk in chunks:
                        tasks.append(
                            (spec.device, int(n_devices), router_name,
                             policy_spec, spec.trace, spec.service_time, chunk,
                             spec.faults, spec.failover, spec.overload)
                        )
        est = self.estimate_chunk_seconds(spec)
        n_jobs, decision = resolve_n_jobs(self.n_jobs, est, len(tasks))
        spec_key = spec_hash(spec, self.chunk_size)
        chunk_reports, resilience = run_chunks_checkpointed(
            get_executor(n_jobs), run_fleet_chunk, tasks,
            spec_key=spec_key,
            checkpoint=self.checkpoint, timeout=self.timeout,
            max_retries=self.max_retries, retry_backoff=self.retry_backoff,
            diagnostics_dir=self.diagnostics_dir, spec=spec,
        )
        self._check_invariants(spec, spec_key, tasks, chunk_reports)
        verification = None
        if self.verify_fraction > 0.0:
            verification = shadow_verify_chunks(
                tasks, chunk_reports, self.verify_fraction, spec_key,
                reference_fleet_chunk, "run_fleet scalar dispatcher",
                seeds_of=lambda task: task[6],
                # per-device sub-reports carry summation-order noise
                # beyond the fleet-level pin; the folded fields are the
                # contract
                ignore=("device_reports", "latencies"),
                diagnostics_dir=self.diagnostics_dir, spec=spec,
            )

        result = FleetSweepResult(spec=spec, execution={
            "n_jobs_requested": self.n_jobs,
            "n_jobs_effective": n_jobs,
            "decision": decision,
            "estimated_chunk_seconds": est,
            **({"verification": verification} if verification else {}),
            **resilience,
        })
        per_cell = len(chunks)
        for c, (n_devices, router_name, policy_label) in enumerate(cell_keys):
            reports: List[FleetReport] = []
            for chunk_out in chunk_reports[c * per_cell:(c + 1) * per_cell]:
                reports.extend(chunk_out)
            result.cells.append(
                FleetCellResult(
                    n_devices=n_devices, router=router_name,
                    policy=policy_label, reports=reports,
                )
            )
        return result

    def _check_invariants(self, spec: FleetSweepSpec, spec_key: str,
                          tasks, chunk_reports) -> None:
        """Always-on invariant pass over every collected fleet report:
        request/energy/residency conservation laws that hold for any
        correct engine — a dict walk per report, not a re-simulation."""
        try:
            for t, (task, reports) in enumerate(zip(tasks, chunk_reports)):
                (_, n_devices, router_name, policy_spec, trace_spec,
                 _, chunk, *_rest) = task
                for seed, report in zip(chunk, reports):
                    TELEMETRY.inc("fleet.requests", int(report.n_requests))
                    TELEMETRY.inc("fleet.requests_dropped",
                                  int(report.n_dropped))
                    TELEMETRY.inc("fleet.requests_retried",
                                  int(report.n_retries))
                    TELEMETRY.inc("fleet.requests_shed",
                                  int(report.n_shed))
                    TELEMETRY.inc("breaker.trips",
                                  int(report.n_breaker_trips))
                    check_fleet_report(
                        report, spec_key=spec_key, seed=seed,
                        context={"chunk": t, "n_devices": int(n_devices),
                                 "router": router_name,
                                 "trace": trace_spec.name,
                                 "policy": policy_spec.label},
                    )
        except InvariantViolation as exc:
            if self.diagnostics_dir is not None:
                write_diagnostics_bundle(
                    self.diagnostics_dir, "invariant_violation", spec=spec,
                    spec_key=spec_key, seed=exc.seed,
                    chunk_id=exc.context.get("chunk"), details=exc.details,
                    error=exc, extra={"invariant": exc.invariant,
                                      "context": exc.context},
                )
            raise
