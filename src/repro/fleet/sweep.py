"""Fleet scenario sweeps: (fleet size x router x policy) cell grids.

:class:`FleetSweepRunner` is the fleet counterpart of
:class:`~repro.runtime.SimSweepRunner`: it fans the full
(fleet size x router x DPM policy) grid, with ``n_traces`` seeded
replications of the shared arrival stream per cell, across the executor
layer (:mod:`repro.runtime.executor`) and aggregates each cell into
mean +- bootstrap CI.  Work units are ``(cell, seed-chunk)`` pairs built
from picklable values only — traces regenerate inside the worker from
:class:`~repro.runtime.simsweep.TraceSpec` recipes and routers
reinstantiate from registry names — so per-seed fleet reports are
identical for every ``(chunk_size, n_jobs)`` combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple, Type

import numpy as np

from ..analysis.ascii_plot import format_table
from ..analysis.bootstrap import CI, bootstrap_ci
from ..device import get_preset
from ..runtime.executor import get_executor, resolve_n_jobs
from ..runtime.simsweep import PolicySpec, TraceSpec, estimate_request_seconds
from .dispatch import ROUTERS, Router, make_router
from .evaluate import run_fleet_batch
from .report import FleetReport

#: rough wall seconds to route one request through a router that only
#: offers the scalar reference loop (per-request Python with a full
#: per-device queue scan)
SCALAR_ROUTE_SECONDS_PER_REQUEST = 2e-5

#: rough wall seconds per request for queue-aware routers on the
#: epoch-advance ``route_step_batch`` path (dense backlog arrays + a
#: shared completion heap; still one Python round per arrival, hence
#: not free like the closed-form ``route_batch`` routers)
STEP_ROUTE_SECONDS_PER_REQUEST = 5e-6


def route_seconds_per_request(router_cls: Type[Router]) -> float:
    """Estimated routing cost of one request on the fastest route path.

    The :meth:`~repro.fleet.dispatch.Dispatcher.assignments` cascade in
    cost-model form: closed-form ``route_batch`` routers cost ~nothing,
    ``route_step_batch`` routers pay the epoch-advance rate, and
    everything else pays the scalar reference-loop rate.  Keeping the
    split here stops :func:`~repro.runtime.executor.resolve_n_jobs`'s
    serial-degrade heuristic from wrongly forcing in-process execution
    on cells whose routing is actually fast.
    """
    if router_cls.route_batch is not Router.route_batch:
        return 0.0
    if router_cls.route_step_batch is not Router.route_step_batch:
        return STEP_ROUTE_SECONDS_PER_REQUEST
    return SCALAR_ROUTE_SECONDS_PER_REQUEST

#: offset decorrelating the routing stream from the trace-generation
#: stream (both are realized from the replication seed)
ROUTE_SEED_OFFSET = 1_000_003


@dataclass(frozen=True)
class FleetSweepSpec:
    """The full (fleet size x router x policy) grid of one fleet sweep.

    One device preset is replicated at every fleet size; one
    :class:`~repro.runtime.simsweep.TraceSpec` describes the shared
    arrival stream (its rate is *fleet-wide* — per-device load shrinks
    as the fleet grows, which is exactly the axis the sweep explores).
    """

    device: str
    fleet_sizes: Tuple[int, ...]
    routers: Tuple[str, ...]
    policies: Tuple[PolicySpec, ...]
    trace: TraceSpec
    n_traces: int = 8
    seed: int = 0
    seed_stride: int = 101
    service_time: float = 0.5

    def __post_init__(self) -> None:
        if not (self.fleet_sizes and self.routers and self.policies):
            raise ValueError("need at least one fleet size, router, and policy")
        if any(int(n) < 1 for n in self.fleet_sizes):
            raise ValueError(f"fleet sizes must be >= 1, got {self.fleet_sizes}")
        for name in self.routers:
            if name not in ROUTERS:
                raise ValueError(
                    f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
                )
        if self.n_traces < 1:
            raise ValueError(f"n_traces must be >= 1, got {self.n_traces}")
        if self.seed_stride < 1:
            raise ValueError(f"seed_stride must be >= 1, got {self.seed_stride}")
        if self.service_time <= 0:
            raise ValueError(f"service_time must be > 0, got {self.service_time}")

    def seeds(self) -> List[int]:
        """Replication seeds, shared across cells so comparisons pair."""
        return [self.seed + k * self.seed_stride for k in range(self.n_traces)]


@dataclass
class FleetCellResult:
    """One (fleet size, router, policy) cell over its trace replications."""

    n_devices: int
    router: str
    policy: str
    reports: List[FleetReport]

    def _ci(self, attr: str, confidence: float = 0.95) -> CI:
        values = np.array([getattr(r, attr) for r in self.reports])
        return bootstrap_ci(values, confidence=confidence)

    def power_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication fleet mean power."""
        return self._ci("mean_power", confidence)

    def saving_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication saving vs. an all-always-on fleet."""
        return self._ci("energy_saving_ratio", confidence)

    def p99_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication p99 latency of the merged stream."""
        return self._ci("p99_latency", confidence)

    @property
    def mean_shutdowns(self) -> float:
        return float(np.mean([r.n_shutdowns for r in self.reports]))

    @property
    def mean_imbalance(self) -> float:
        """Across-replication mean of the max/mean request imbalance."""
        return float(np.mean([r.load_imbalance for r in self.reports]))


@dataclass
class FleetSweepResult:
    """All cells of one sweep, in (fleet size, router, policy) grid order."""

    spec: FleetSweepSpec
    cells: List[FleetCellResult] = field(default_factory=list)
    #: how the runner executed the grid: requested vs effective job
    #: count, the degrade decision, and the per-chunk work estimate
    execution: Dict[str, Any] = field(default_factory=dict)

    def cell(self, n_devices: int, router: str, policy: str) -> FleetCellResult:
        """Look up one cell by its coordinates."""
        for c in self.cells:
            if (c.n_devices, c.router, c.policy) == (n_devices, router, policy):
                return c
        raise KeyError(f"no cell ({n_devices!r}, {router!r}, {policy!r})")

    def render(self) -> str:
        headers = [
            "fleet", "router", "policy", "power (W)", "+-", "saving",
            "p50 lat", "p99 lat", "shutdowns", "imbalance",
        ]
        rows = []
        for c in self.cells:
            power = c.power_ci()
            p50 = float(np.mean([r.p50_latency for r in c.reports]))
            p99 = c.p99_ci()
            rows.append([
                c.n_devices, c.router, c.policy,
                round(power.estimate, 4), round(power.half_width, 4),
                round(c.saving_ci().estimate, 4),
                round(p50, 3), round(p99.estimate, 3),
                round(c.mean_shutdowns, 1), round(c.mean_imbalance, 2),
            ])
        return format_table(
            headers, rows,
            title=f"FLEET-SWEEP: {self.spec.device} fleet scenario grid "
                  f"({self.spec.n_traces} traces/cell, "
                  f"trace={self.spec.trace.name})",
        )


def run_fleet_chunk(
    device_name: str,
    n_devices: int,
    router_name: str,
    policy_spec: PolicySpec,
    trace_spec: TraceSpec,
    service_time: float,
    seeds: Sequence[int],
) -> List[FleetReport]:
    """One (cell, seed-chunk) work unit — module-level and built from
    picklable values only, so the executor can ship it to a worker.
    The chunk's (seed x device) sub-traces flatten into a single
    :func:`~repro.fleet.evaluate.run_fleet_batch` kernel invocation;
    each seed's fleet report is still a pure function of the arguments
    (every sub-trace resolves independently inside the batch), so
    results are identical for every ``(chunk_size, n_jobs)``.  The
    retained per-device reports are stripped of their raw latency
    arrays (the merged-stream quantiles are already folded) so the
    pickled results stay small."""
    device = get_preset(device_name)
    return run_fleet_batch(
        device, policy_spec.policy,
        [trace_spec.realize(seed) for seed in seeds],
        make_router(router_name), n_devices,
        service_time=service_time, oracle=policy_spec.oracle,
        route_seeds=[seed + ROUTE_SEED_OFFSET for seed in seeds],
        keep_latencies=False,
    )


class FleetSweepRunner:
    """Chunked executor fan-out over the fleet cell grid.

    Parameters
    ----------
    chunk_size:
        Trace replications per work unit.
    n_jobs:
        Worker processes to shard (cell, chunk) units across (1 = serial).
    """

    def __init__(self, chunk_size: int = 4, n_jobs: int = 1) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self.n_jobs = int(n_jobs)

    def estimate_chunk_seconds(self, spec: FleetSweepSpec) -> float:
        """Mean estimated wall seconds of one (cell, seed-chunk) unit.

        Same request-count x engine-cost heuristic as
        :meth:`~repro.runtime.SimSweepRunner.estimate_chunk_seconds`,
        plus the routing cost via :func:`route_seconds_per_request`:
        queue-aware routers advance one arrival per Python round even
        on the epoch-advance path, which still dominates the batched
        simulation engines (at a ~4x lower rate than the scalar loop).
        The shared arrival stream's request count is fleet-wide, so the
        per-chunk work does not grow with the fleet-size axis.
        """
        chunk = min(self.chunk_size, spec.n_traces)
        requests = spec.trace.dist.rate() * spec.trace.duration
        per_route = [
            chunk * requests * route_seconds_per_request(ROUTERS[name])
            for name in spec.routers
        ]
        per_policy = [
            estimate_request_seconds(p.policy, chunk * requests)
            for p in spec.policies
        ]
        return float(np.mean(per_route) + np.mean(per_policy))

    def run(self, spec: FleetSweepSpec) -> FleetSweepResult:
        """Run the full grid; deterministic for any (chunk_size, n_jobs)."""
        seeds = spec.seeds()
        chunks = [
            seeds[i:i + self.chunk_size]
            for i in range(0, len(seeds), self.chunk_size)
        ]
        cell_keys: List[Tuple[int, str, str]] = []
        tasks = []
        for n_devices in spec.fleet_sizes:
            for router_name in spec.routers:
                for policy_spec in spec.policies:
                    cell_keys.append(
                        (int(n_devices), router_name, policy_spec.label)
                    )
                    for chunk in chunks:
                        tasks.append(
                            (spec.device, int(n_devices), router_name,
                             policy_spec, spec.trace, spec.service_time, chunk)
                        )
        est = self.estimate_chunk_seconds(spec)
        n_jobs, decision = resolve_n_jobs(self.n_jobs, est, len(tasks))
        chunk_reports = get_executor(n_jobs).map(run_fleet_chunk, tasks)

        result = FleetSweepResult(spec=spec, execution={
            "n_jobs_requested": self.n_jobs,
            "n_jobs_effective": n_jobs,
            "decision": decision,
            "estimated_chunk_seconds": est,
        })
        per_cell = len(chunks)
        for c, (n_devices, router_name, policy_label) in enumerate(cell_keys):
            reports: List[FleetReport] = []
            for chunk_out in chunk_reports[c * per_cell:(c + 1) * per_cell]:
                reports.extend(chunk_out)
            result.cells.append(
                FleetCellResult(
                    n_devices=n_devices, router=router_name,
                    policy=policy_label, reports=reports,
                )
            )
        return result
