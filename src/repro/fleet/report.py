"""Fleet-level aggregation of per-device simulation reports.

A fleet run produces one :class:`~repro.sim.SimReport` per device (all
assembled through :func:`~repro.sim.stats.compile_report`, whichever
engine ran the device).  :func:`build_fleet_report` folds them into one
:class:`FleetReport`: fleet energy and mean power, savings against an
all-always-on fleet, per-device request counts and residency, and tail
latency over the *merged* completion stream — per-request delays are
carried on each device report precisely so the fleet quantiles are exact
order statistics, not approximations from per-device summaries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from ..analysis.metrics import latency_percentiles
from ..sim.stats import SimReport


@dataclass
class FleetReport:
    """Final metrics of one fleet simulation run."""

    n_devices: int
    router: str                     #: routing policy name
    policy: str                     #: per-device DPM policy name
    duration: float                 #: fleet horizon (max device end time)
    total_energy: float             #: joules, summed over devices
    mean_power: float               #: fleet watts (energy / duration)
    energy_saving_ratio: float      #: vs. an all-always-on fleet
    n_requests: int
    mean_latency: float             #: over the merged completion stream
    p50_latency: float
    p95_latency: float
    p99_latency: float
    max_latency: float
    n_shutdowns: int
    n_wrong_shutdowns: int
    requests_per_device: Tuple[int, ...]
    state_residency: Dict[str, float]  #: fleet-total seconds per condition
    #: mean per-device uptime fraction under the injected fault schedule
    #: (1.0 when the run had no faults)
    availability: float = 1.0
    #: total failover backoff retries across all requests
    n_retries: int = 0
    #: requests that exhausted their retries and were dropped
    n_dropped: int = 0
    #: mean added dispatch delay (seconds) over requests that landed
    failover_latency_inflation: float = 0.0
    #: requests proactively shed by admission control (deadline missed
    #: or retry budget exhausted); disjoint from ``n_dropped``
    n_shed: int = 0
    #: the subset of ``n_shed`` shed by retry-budget exhaustion
    n_budget_shed: int = 0
    #: fraction of *offered* requests served within their deadline
    #: (== throughput when deadlines are disabled; always <= it)
    goodput: float = 1.0
    #: fraction of *landed* requests that made their deadline
    slo_attainment: float = 1.0
    #: circuit-breaker trips (closed/half-open -> open) over the run
    n_breaker_trips: int = 0
    #: requests offered to the dispatcher (0 for legacy reports built
    #: without the offered count; then conservation is unchecked)
    n_offered: int = 0
    #: the per-device reports the aggregate was folded from
    device_reports: Tuple[SimReport, ...] = field(default=(), repr=False)

    @property
    def load_imbalance(self) -> float:
        """Max over mean requests per device (1.0 = perfectly balanced)."""
        counts = np.asarray(self.requests_per_device, dtype=float)
        mean = counts.mean() if counts.size else 0.0
        return float(counts.max() / mean) if mean > 0 else 1.0


def build_fleet_report(
    router: str,
    policy: str,
    home_power: float,
    reports: Sequence[SimReport],
    keep_latencies: bool = True,
    availability: float = 1.0,
    n_retries: int = 0,
    n_dropped: int = 0,
    failover_latency_inflation: float = 0.0,
    n_shed: int = 0,
    n_budget_shed: int = 0,
    goodput: float = 1.0,
    slo_attainment: float = 1.0,
    n_breaker_trips: int = 0,
    n_offered: int = 0,
) -> FleetReport:
    """Fold per-device reports into the fleet aggregate.

    ``home_power`` is the replicated device's serving-state power, the
    per-device always-on reference the fleet saving is measured against.
    ``keep_latencies=False`` strips the raw per-request arrays from the
    retained ``device_reports`` once the exact merged-stream quantiles
    are computed — the fold is the last consumer, so sweep workers can
    ship the aggregate back without R x n_requests floats in the pickle.
    The fault-injection fields (``availability`` and the failover
    counters) come from the dispatcher's
    :class:`~repro.fleet.dispatch.FailoverOutcome`, the overload fields
    (shed counts, goodput, SLO attainment, breaker trips) from an
    :class:`~repro.fleet.dispatch.OverloadOutcome`; their defaults
    describe a fault-free, shed-free run.  ``n_offered`` is the number
    of requests the dispatcher was offered; when > 0 the runtime
    verifier enforces ``n_requests + n_dropped + n_shed == n_offered``.
    """
    if not reports:
        raise ValueError("need at least one device report")
    n_devices = len(reports)
    duration = max(r.duration for r in reports)
    total_energy = float(sum(r.total_energy for r in reports))
    horizon = duration if duration > 0 else 1.0
    mean_power = total_energy / horizon
    always_on = n_devices * home_power * horizon
    saving = 1.0 - total_energy / always_on if always_on > 0 else 0.0

    merged = np.concatenate([np.asarray(r.latencies, dtype=float)
                             for r in reports])
    p50, p95, p99 = latency_percentiles(merged)
    residency: Dict[str, float] = {}
    for r in reports:
        for key, span in r.state_residency.items():
            residency[key] = residency.get(key, 0.0) + span
    if not keep_latencies:
        reports = [dataclasses.replace(r, latencies=()) for r in reports]

    return FleetReport(
        n_devices=n_devices,
        router=router,
        policy=policy,
        duration=duration,
        total_energy=total_energy,
        mean_power=mean_power,
        energy_saving_ratio=saving,
        n_requests=int(merged.size),
        mean_latency=float(merged.mean()) if merged.size else 0.0,
        p50_latency=p50,
        p95_latency=p95,
        p99_latency=p99,
        max_latency=float(merged.max()) if merged.size else 0.0,
        n_shutdowns=int(sum(r.n_shutdowns for r in reports)),
        n_wrong_shutdowns=int(sum(r.n_wrong_shutdowns for r in reports)),
        requests_per_device=tuple(r.n_requests for r in reports),
        state_residency=residency,
        availability=float(availability),
        n_retries=int(n_retries),
        n_dropped=int(n_dropped),
        failover_latency_inflation=float(failover_latency_inflation),
        n_shed=int(n_shed),
        n_budget_shed=int(n_budget_shed),
        goodput=float(goodput),
        slo_attainment=float(slo_attainment),
        n_breaker_trips=int(n_breaker_trips),
        n_offered=int(n_offered),
        device_reports=tuple(reports),
    )
