"""Synthetic workload generation: distributions, schedules, sources, traces."""

from .arrivals import (
    DISTRIBUTIONS,
    Deterministic,
    Exponential,
    HyperExponential,
    InterArrival,
    Pareto,
    Uniform,
    Weibull,
    from_dict,
)
from .faults import FaultProcess, FaultSchedule, no_faults, resolve_fault_schedule
from .generator import (
    bernoulli_arrivals,
    piecewise_renewal_trace,
    renewal_trace,
    trace_from_slots,
)
from .mmpp import MMPP, two_regime_mmpp
from .nonstationary import (
    ConstantRate,
    PiecewiseConstantRate,
    RandomWalkRate,
    RateSchedule,
    SinusoidalRate,
    fig2_schedule,
)
from .onoff import OnOffSource
from .trace import Trace, TraceStats
from .trace_analysis import (
    IdleHistogram,
    TraceCharacter,
    burstiness,
    characterize,
    hill_tail_index,
    idle_histogram,
    interarrival_autocorrelation,
)

__all__ = [
    "InterArrival",
    "Exponential",
    "Deterministic",
    "Uniform",
    "Pareto",
    "HyperExponential",
    "Weibull",
    "DISTRIBUTIONS",
    "from_dict",
    "FaultProcess",
    "FaultSchedule",
    "no_faults",
    "resolve_fault_schedule",
    "Trace",
    "TraceStats",
    "IdleHistogram",
    "idle_histogram",
    "hill_tail_index",
    "burstiness",
    "interarrival_autocorrelation",
    "TraceCharacter",
    "characterize",
    "MMPP",
    "two_regime_mmpp",
    "OnOffSource",
    "RateSchedule",
    "ConstantRate",
    "PiecewiseConstantRate",
    "SinusoidalRate",
    "RandomWalkRate",
    "fig2_schedule",
    "renewal_trace",
    "piecewise_renewal_trace",
    "bernoulli_arrivals",
    "trace_from_slots",
]
