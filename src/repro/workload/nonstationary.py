"""Time-varying arrival-rate schedules.

The paper's central argument is about *nonstationary* input: "temporarily
stationary synthetic input" whose parameters switch at marked points
(Fig. 2), plus the claim that Q-DPM tolerates "small scale variations".
Both experiment families need an explicit model of how the arrival
probability evolves over (slotted) time.  A :class:`RateSchedule` maps a
slot index to the Bernoulli arrival probability used in that slot; the
slotted environment samples from it, the exact MDP builder freezes it at
a point, and Fig. 2 reads its switch points for the vertical markers.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np


def _check_prob(p: float, what: str = "rate") -> float:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{what} must be a probability in [0, 1], got {p}")
    return float(p)


class RateSchedule(ABC):
    """Per-slot Bernoulli arrival probability as a function of slot index."""

    @abstractmethod
    def rate_at(self, slot: int) -> float:
        """Arrival probability used in slot ``slot`` (0-based)."""

    def switch_points(self, horizon: int) -> List[int]:
        """Slot indices (within ``[0, horizon)``) where the regime changes.

        Only piecewise-constant schedules have true switch points; smooth
        or stochastic schedules return an empty list.
        """
        return []

    def max_rate(self, horizon: int) -> float:
        """Upper bound on the rate over the horizon (for sizing queues)."""
        return max(self.rate_at(s) for s in range(0, horizon, max(1, horizon // 1000)))

    def mean_rate(self, horizon: int) -> float:
        """Average rate over the horizon (coarse 1000-point sample)."""
        step = max(1, horizon // 1000)
        pts = range(0, horizon, step)
        return float(np.mean([self.rate_at(s) for s in pts]))


class ConstantRate(RateSchedule):
    """Stationary input: the Fig. 1 setting."""

    def __init__(self, rate: float) -> None:
        self._rate = _check_prob(rate)

    @property
    def rate(self) -> float:
        """The constant arrival probability."""
        return self._rate

    def rate_at(self, slot: int) -> float:
        return self._rate

    def max_rate(self, horizon: int) -> float:
        return self._rate

    def mean_rate(self, horizon: int) -> float:
        return self._rate

    def __repr__(self) -> str:
        return f"ConstantRate({self._rate})"


class PiecewiseConstantRate(RateSchedule):
    """Temporarily stationary input with abrupt switches: the Fig. 2 setting.

    Parameters
    ----------
    segments:
        Sequence of ``(duration_slots, rate)`` pairs.  After the last
        segment the schedule holds the final rate forever (so horizons a
        bit longer than the sum of durations are safe).
    """

    def __init__(self, segments: Sequence[Tuple[int, float]]) -> None:
        if not segments:
            raise ValueError("need at least one segment")
        self._segments: List[Tuple[int, float]] = []
        for duration, rate in segments:
            if duration <= 0:
                raise ValueError(f"segment duration must be > 0, got {duration}")
            self._segments.append((int(duration), _check_prob(rate)))
        # cumulative segment end slots
        ends = np.cumsum([d for d, _ in self._segments])
        self._ends: List[int] = [int(e) for e in ends]

    @property
    def segments(self) -> List[Tuple[int, float]]:
        """Copy of the ``(duration, rate)`` list."""
        return list(self._segments)

    @property
    def total_slots(self) -> int:
        """Sum of all segment durations."""
        return self._ends[-1]

    def segment_index_at(self, slot: int) -> int:
        """Index of the segment active in ``slot`` (last one if beyond end)."""
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        for i, end in enumerate(self._ends):
            if slot < end:
                return i
        return len(self._segments) - 1

    def rate_at(self, slot: int) -> float:
        return self._segments[self.segment_index_at(slot)][1]

    def switch_points(self, horizon: int) -> List[int]:
        return [e for e in self._ends[:-1] if e < horizon]

    def max_rate(self, horizon: int) -> float:
        return max(rate for _, rate in self._segments)

    def mean_rate(self, horizon: int) -> float:
        total = 0.0
        covered = 0
        for (duration, rate), end in zip(self._segments, self._ends):
            take = min(duration, max(0, horizon - covered))
            total += take * rate
            covered += take
        if covered < horizon:  # final rate holds
            total += (horizon - covered) * self._segments[-1][1]
        return total / horizon if horizon > 0 else self._segments[0][1]

    def __repr__(self) -> str:
        return f"PiecewiseConstantRate({self._segments})"


class SinusoidalRate(RateSchedule):
    """Smooth periodic drift: the "small scale variations" setting.

    ``rate(t) = base + amplitude * sin(2 pi t / period)``, clipped to
    [0, 1].  Models diurnal-style slow modulation.
    """

    def __init__(self, base: float, amplitude: float, period: int) -> None:
        self._base = _check_prob(base, "base")
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self._amplitude = float(amplitude)
        self._period = int(period)

    def rate_at(self, slot: int) -> float:
        raw = self._base + self._amplitude * math.sin(
            2.0 * math.pi * slot / self._period
        )
        return min(1.0, max(0.0, raw))

    def max_rate(self, horizon: int) -> float:
        return min(1.0, self._base + self._amplitude)

    def __repr__(self) -> str:
        return (
            f"SinusoidalRate(base={self._base}, amplitude={self._amplitude}, "
            f"period={self._period})"
        )


class RandomWalkRate(RateSchedule):
    """Bounded-random-walk drift, pre-generated for reproducibility.

    Each ``step_every`` slots the rate moves by a uniform step in
    ``[-step, +step]`` and reflects off ``[low, high]``.  The walk is
    realized lazily from a dedicated generator seeded at construction, so
    ``rate_at`` is a pure function of the slot index.
    """

    def __init__(
        self,
        start: float,
        step: float,
        low: float = 0.0,
        high: float = 1.0,
        step_every: int = 100,
        seed: int = 0,
    ) -> None:
        if not 0 <= low < high <= 1:
            raise ValueError(f"need 0 <= low < high <= 1, got [{low}, {high}]")
        self._start = _check_prob(start, "start")
        if not low <= start <= high:
            raise ValueError(f"start {start} outside bounds [{low}, {high}]")
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        if step_every <= 0:
            raise ValueError(f"step_every must be > 0, got {step_every}")
        self._step = float(step)
        self._low = float(low)
        self._high = float(high)
        self._every = int(step_every)
        self._rng = np.random.default_rng(seed)
        self._walk: List[float] = [self._start]

    def _extend_to(self, idx: int) -> None:
        while len(self._walk) <= idx:
            prev = self._walk[-1]
            nxt = prev + self._rng.uniform(-self._step, self._step)
            # reflect off the bounds
            if nxt < self._low:
                nxt = 2 * self._low - nxt
            if nxt > self._high:
                nxt = 2 * self._high - nxt
            nxt = min(self._high, max(self._low, nxt))
            self._walk.append(nxt)

    def rate_at(self, slot: int) -> float:
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        idx = slot // self._every
        self._extend_to(idx)
        return self._walk[idx]

    def max_rate(self, horizon: int) -> float:
        return self._high

    def __repr__(self) -> str:
        return (
            f"RandomWalkRate(start={self._start}, step={self._step}, "
            f"bounds=[{self._low}, {self._high}], every={self._every})"
        )


def fig2_schedule(
    rates: Sequence[float] = (0.30, 0.05, 0.20, 0.02),
    segment_slots: int = 50_000,
) -> PiecewiseConstantRate:
    """The default piecewise-stationary schedule of the Fig. 2 reproduction."""
    return PiecewiseConstantRate([(segment_slots, r) for r in rates])
