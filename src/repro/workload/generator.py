"""High-level trace builders.

Bridges the distribution / schedule primitives to the two consumers:

- :func:`renewal_trace`, :func:`piecewise_renewal_trace` produce
  continuous-time :class:`~repro.workload.trace.Trace` objects for the
  event-driven simulator.
- :func:`bernoulli_arrivals` realizes a slot-indexed 0/1 arrival sequence
  from a :class:`~repro.workload.nonstationary.RateSchedule` for the
  slotted DTMDP environment (what Fig. 1 / Fig. 2 use).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .arrivals import InterArrival
from .nonstationary import RateSchedule
from .trace import Trace


def renewal_trace(
    dist: InterArrival,
    duration: float,
    rng: np.random.Generator,
    max_requests: int = 10_000_000,
) -> Trace:
    """Generate a renewal-process trace of the given duration.

    Draws inter-arrival gaps in batches until the window is covered.
    ``max_requests`` guards against runaway generation from very high
    rates or degenerate distributions.
    """
    if duration <= 0:
        raise ValueError("duration must be > 0")
    arrivals: List[float] = []
    t = 0.0
    batch = 1024
    while t < duration and len(arrivals) < max_requests:
        gaps = dist.sample(rng, batch)
        for g in gaps:
            t += float(g)
            if t >= duration or len(arrivals) >= max_requests:
                break
            arrivals.append(t)
    return Trace(arrivals, duration=duration)


def piecewise_renewal_trace(
    segments: Sequence[Tuple[InterArrival, float]],
    rng: np.random.Generator,
) -> Tuple[Trace, List[float]]:
    """Concatenate renewal segments — a continuous-time Fig. 2-style input.

    Parameters
    ----------
    segments:
        Sequence of ``(distribution, duration)`` pairs.

    Returns
    -------
    (trace, switch_times):
        The combined trace and the absolute switch instants between
        segments (for plot markers).
    """
    if not segments:
        raise ValueError("need at least one segment")
    trace: Optional[Trace] = None
    switch_times: List[float] = []
    elapsed = 0.0
    for dist, duration in segments:
        seg = renewal_trace(dist, duration, rng)
        trace = seg if trace is None else trace.concat(seg)
        elapsed += duration
        switch_times.append(elapsed)
    return trace, switch_times[:-1]


def bernoulli_arrivals(
    schedule: RateSchedule,
    n_slots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Realize slot arrivals: 1 with probability ``schedule.rate_at(slot)``.

    Vectorized over constant stretches where possible; exact semantics are
    per-slot independent Bernoulli draws.
    """
    if n_slots < 0:
        raise ValueError("n_slots must be >= 0")
    probs = np.fromiter(
        (schedule.rate_at(s) for s in range(n_slots)), dtype=float, count=n_slots
    )
    return (rng.random(n_slots) < probs).astype(np.int8)


def trace_from_slots(arrivals: np.ndarray, slot_length: float) -> Trace:
    """Convert a slot arrival sequence into a continuous-time trace.

    Each arriving request is stamped at the *start* of its slot.  Useful
    for feeding slotted workloads to the event-driven simulator.
    """
    if slot_length <= 0:
        raise ValueError("slot_length must be > 0")
    arrivals = np.asarray(arrivals)
    slots = np.nonzero(arrivals)[0]
    times = slots * slot_length
    return Trace(times, duration=len(arrivals) * slot_length)
