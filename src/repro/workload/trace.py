"""Request traces: the concrete synthetic input fed to simulators.

A :class:`Trace` is an ordered sequence of request arrival times (plus
optional per-request service demands).  Generators produce traces,
simulators consume them, and the estimator of the model-based baseline
fits parameters to them.  Traces serialize to a simple two-column CSV so
experiments are replayable.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

import numpy as np


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (used in reports and tests)."""

    n_requests: int
    duration: float
    arrival_rate: float
    mean_interarrival: float
    cv_interarrival: float  #: coefficient of variation (1.0 for Poisson)
    max_gap: float


class Trace:
    """An arrival trace: strictly ordered request times on ``[0, duration]``.

    Parameters
    ----------
    arrival_times:
        Non-decreasing array of arrival instants (seconds).
    duration:
        Observation-window length; defaults to the last arrival.  Needed so
        an empty tail (a long final idle period) is not silently dropped.
    service_demands:
        Optional per-request service time demands (seconds); defaults to
        None meaning "unit demand decided by the simulator".
    """

    def __init__(
        self,
        arrival_times: Iterable[float],
        duration: Optional[float] = None,
        service_demands: Optional[Iterable[float]] = None,
    ) -> None:
        if isinstance(arrival_times, np.ndarray):
            times = np.array(arrival_times, dtype=float)
        else:
            times = np.asarray(list(arrival_times), dtype=float)
        if times.size and np.any(np.diff(times) < 0):
            raise ValueError("arrival_times must be non-decreasing")
        if times.size and times[0] < 0:
            raise ValueError("arrival_times must be >= 0")
        if duration is None:
            duration = float(times[-1]) if times.size else 0.0
        if times.size and duration < times[-1]:
            raise ValueError(
                f"duration {duration} ends before the last arrival {times[-1]}"
            )
        self._times = times
        self._duration = float(duration)
        if service_demands is not None:
            if isinstance(service_demands, np.ndarray):
                demands = np.array(service_demands, dtype=float)
            else:
                demands = np.asarray(list(service_demands), dtype=float)
            if demands.shape != times.shape:
                raise ValueError("service_demands must match arrival_times length")
            if demands.size and np.any(demands < 0):
                raise ValueError("service_demands must be >= 0")
            self._demands: Optional[np.ndarray] = demands
        else:
            self._demands = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def arrival_times(self) -> np.ndarray:
        """Copy of the arrival-time array."""
        return self._times.copy()

    @property
    def service_demands(self) -> Optional[np.ndarray]:
        """Copy of per-request demands, or None."""
        return None if self._demands is None else self._demands.copy()

    @property
    def duration(self) -> float:
        """Observation-window length in seconds."""
        return self._duration

    def __len__(self) -> int:
        return int(self._times.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self._times.tolist())

    def interarrivals(self) -> np.ndarray:
        """Gaps between consecutive arrivals (first gap is from t=0)."""
        if not len(self):
            return np.empty(0)
        return np.diff(np.concatenate(([0.0], self._times)))

    def idle_periods(self, service_time: float = 0.0) -> np.ndarray:
        """Idle-period lengths assuming each request busies the device for
        ``service_time`` seconds (simple back-to-back service model).

        The gap after the last request (to ``duration``) is included.  Used
        by oracle policies and by idle-length histogram reports.
        """
        if service_time < 0:
            raise ValueError("service_time must be >= 0")
        if not len(self):
            return np.array([self._duration]) if self._duration > 0 else np.empty(0)
        ends = self._times + service_time
        starts = np.concatenate(([0.0], ends[:-1]))
        gaps = self._times - starts
        tail = self._duration - ends[-1]
        gaps = np.concatenate((gaps, [tail]))
        return np.clip(gaps, 0.0, None)

    def stats(self) -> TraceStats:
        """Compute :class:`TraceStats` for this trace."""
        gaps = self.interarrivals()
        if gaps.size:
            mean_gap = float(gaps.mean())
            cv = float(gaps.std() / mean_gap) if mean_gap > 0 else 0.0
            max_gap = float(
                max(gaps.max(), self._duration - self._times[-1])
            )
        else:
            mean_gap = float("inf")
            cv = 0.0
            max_gap = self._duration
        rate = len(self) / self._duration if self._duration > 0 else 0.0
        return TraceStats(
            n_requests=len(self),
            duration=self._duration,
            arrival_rate=rate,
            mean_interarrival=mean_gap,
            cv_interarrival=cv,
            max_gap=max_gap,
        )

    # ------------------------------------------------------------------ #
    # manipulation
    # ------------------------------------------------------------------ #

    def slice(self, start: float, end: float) -> "Trace":
        """Sub-trace on ``[start, end]``, re-based so it starts at t=0."""
        if not 0 <= start <= end <= self._duration:
            raise ValueError(
                f"need 0 <= start <= end <= duration, got [{start}, {end}] "
                f"within {self._duration}"
            )
        mask = (self._times >= start) & (self._times <= end)
        times = self._times[mask] - start
        demands = self._demands[mask] if self._demands is not None else None
        return Trace(times, duration=end - start, service_demands=demands)

    def concat(self, other: "Trace") -> "Trace":
        """Append ``other`` after this trace (time-shifted by our duration)."""
        times = np.concatenate((self._times, other._times + self._duration))
        if self._demands is None and other._demands is None:
            demands = None
        else:
            mine = self._demands if self._demands is not None else np.zeros(len(self))
            theirs = (
                other._demands if other._demands is not None else np.zeros(len(other))
            )
            demands = np.concatenate((mine, theirs))
        return Trace(times, duration=self._duration + other._duration,
                     service_demands=demands)

    def split(
        self,
        assignments: Iterable[int],
        n_parts: Optional[int] = None,
    ) -> List["Trace"]:
        """Partition into per-assignee sub-traces (the dispatcher primitive).

        ``assignments[i]`` names the part request ``i`` belongs to.  Every
        sub-trace keeps the *full* observation window, so trailing idle
        time is preserved on each part; per-request demands are carried
        with their requests.  Sub-traces stay sorted because each is an
        order-preserving subsequence of a sorted sequence.

        Parameters
        ----------
        assignments:
            Integer array aligned with the arrivals, values in
            ``[0, n_parts)``.
        n_parts:
            Number of parts to produce (parts may be empty); defaults to
            ``max(assignments) + 1``.
        """
        assignments = np.asarray(assignments)
        if assignments.shape != self._times.shape:
            raise ValueError(
                f"assignments must match the {len(self)} arrivals, "
                f"got shape {assignments.shape}"
            )
        if assignments.size and not np.issubdtype(assignments.dtype, np.integer):
            raise ValueError("assignments must be integers")
        if n_parts is None:
            n_parts = int(assignments.max()) + 1 if assignments.size else 1
        if n_parts < 1:
            raise ValueError(f"n_parts must be >= 1, got {n_parts}")
        if assignments.size and not (
            0 <= int(assignments.min()) and int(assignments.max()) < n_parts
        ):
            raise ValueError(
                f"assignments must lie in [0, {n_parts}), got "
                f"[{int(assignments.min())}, {int(assignments.max())}]"
            )
        parts: List[Trace] = []
        for k in range(int(n_parts)):
            mask = assignments == k
            demands = self._demands[mask] if self._demands is not None else None
            parts.append(
                Trace(
                    self._times[mask],
                    duration=self._duration,
                    service_demands=demands,
                )
            )
        return parts

    @classmethod
    def merge(cls, traces: Iterable["Trace"]) -> "Trace":
        """Superpose traces observed over a shared window (inverse of
        :meth:`split` up to the ordering of simultaneous arrivals).

        The merged window is the longest of the inputs; demands are
        carried with their requests (traces without demands contribute
        zeros when any input has them).  The time sort is stable, so ties
        resolve in input-trace order — deterministic for any input.
        """
        traces = list(traces)
        if not traces:
            raise ValueError("need at least one trace to merge")
        for t in traces:
            if not isinstance(t, Trace):
                raise TypeError(f"can only merge Trace objects, got {type(t)!r}")
        duration = max(t._duration for t in traces)
        times = np.concatenate([t._times for t in traces])
        order = np.argsort(times, kind="stable")
        if any(t._demands is not None for t in traces):
            demands = np.concatenate([
                t._demands if t._demands is not None else np.zeros(len(t))
                for t in traces
            ])[order]
        else:
            demands = None
        return cls(times[order], duration=duration, service_demands=demands)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_csv(self) -> str:
        """Two-column CSV: arrival time, service demand (blank if none).

        The header row carries the window duration so round trips preserve
        trailing idle time.
        """
        buf = io.StringIO()
        buf.write(f"# duration={self._duration!r}\n")
        buf.write("arrival_time,service_demand\n")
        for i, t in enumerate(self._times):
            demand = "" if self._demands is None else repr(float(self._demands[i]))
            buf.write(f"{float(t)!r},{demand}\n")
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_csv`."""
        duration = None
        times = []
        demands: list = []
        any_demand = False
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("arrival_time"):
                continue
            if line.startswith("#"):
                if "duration=" in line:
                    duration = float(line.split("duration=", 1)[1])
                continue
            parts = line.split(",")
            times.append(float(parts[0]))
            if len(parts) > 1 and parts[1] != "":
                demands.append(float(parts[1]))
                any_demand = True
            else:
                demands.append(0.0)
        return cls(
            times,
            duration=duration,
            service_demands=demands if any_demand else None,
        )

    def save(self, path: str) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        with open(path, "w") as f:
            f.write(self.to_csv())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with open(path) as f:
            return cls.from_csv(f.read())

    def __repr__(self) -> str:
        return f"Trace(n={len(self)}, duration={self._duration:.6g})"
