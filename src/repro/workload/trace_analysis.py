"""Trace characterization: the statistics DPM policies key on.

Idle-period structure decides which policy family wins: memoryless gaps
favour plain timeouts, heavy tails make aggressive shutdown expensive and
predictors valuable, burstiness rewards adaptivity.  This module
extracts those characteristics from a :class:`~repro.workload.Trace` —
idle histograms, a Hill tail-index estimator, burstiness and
autocorrelation measures — for reports and for choosing policy
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .trace import Trace


@dataclass(frozen=True)
class IdleHistogram:
    """Idle-period histogram with the survival curve timeouts care about."""

    edges: np.ndarray       #: bin edges (len n+1)
    counts: np.ndarray      #: per-bin counts (len n)
    survival: np.ndarray    #: P(idle > edge) at each edge (len n+1)

    def fraction_longer_than(self, threshold: float) -> float:
        """Fraction of idle periods strictly longer than ``threshold``
        (interpolated on the survival curve; 1.0 below the smallest
        observed period)."""
        xs = np.concatenate(([0.0], self.edges))
        ys = np.concatenate(([1.0], self.survival))
        return float(np.interp(threshold, xs, ys))


def idle_histogram(
    trace: Trace,
    service_time: float = 0.0,
    n_bins: int = 30,
) -> IdleHistogram:
    """Histogram + survival curve of the trace's idle periods."""
    periods = trace.idle_periods(service_time)
    periods = periods[periods > 0]
    if periods.size == 0:
        raise ValueError("trace has no positive idle periods")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    counts, edges = np.histogram(periods, bins=n_bins)
    survival = np.array([(periods > e).mean() for e in edges])
    return IdleHistogram(edges=edges, counts=counts, survival=survival)


def hill_tail_index(samples: np.ndarray, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the power-law tail index alpha.

    Fits the upper ``tail_fraction`` of the sample; for Pareto(alpha)
    data it is consistent for alpha.  Small alpha (< 2) = heavy tail =
    greedy shutdown is risky.  Requires at least 10 tail points.
    """
    samples = np.asarray(samples, dtype=float)
    samples = samples[samples > 0]
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    k = max(int(samples.size * tail_fraction), 2)
    if samples.size < 10 or k < 2:
        raise ValueError("need at least 10 positive samples for the Hill estimator")
    tail = np.sort(samples)[-k:]
    x_k = tail[0]
    logs = np.log(tail / x_k)
    mean_log = logs[1:].mean() if k > 1 else logs.mean()
    if mean_log <= 0:
        return float("inf")
    return float(1.0 / mean_log)


def burstiness(trace: Trace) -> float:
    """Goh-Barabasi burstiness of the inter-arrival process.

    ``B = (sigma - mu) / (sigma + mu)`` over inter-arrival times:
    -1 = periodic, 0 = Poisson, -> 1 = extremely bursty.
    """
    gaps = trace.interarrivals()
    if gaps.size < 2:
        raise ValueError("need at least two arrivals")
    mu = float(gaps.mean())
    sigma = float(gaps.std())
    if sigma + mu == 0:
        return 0.0
    return (sigma - mu) / (sigma + mu)


def interarrival_autocorrelation(trace: Trace, lag: int = 1) -> float:
    """Lag-k autocorrelation of inter-arrival times (0 for renewal input;
    positive = clustered gaps, i.e. regime structure a detector can use)."""
    gaps = trace.interarrivals()
    if lag < 1:
        raise ValueError("lag must be >= 1")
    if gaps.size <= lag + 1:
        raise ValueError("trace too short for this lag")
    a = gaps[:-lag] - gaps[:-lag].mean()
    b = gaps[lag:] - gaps[lag:].mean()
    denom = np.sqrt((a * a).sum() * (b * b).sum())
    if denom == 0:
        return 0.0
    return float((a * b).sum() / denom)


@dataclass(frozen=True)
class TraceCharacter:
    """One-call summary used by reports and policy auto-configuration."""

    arrival_rate: float
    cv_interarrival: float
    burstiness: float
    lag1_autocorrelation: float
    tail_index: Optional[float]     #: None when too few samples
    mean_idle: float
    idle_longer_than_breakeven: Optional[float]  #: needs a device


def characterize(
    trace: Trace,
    service_time: float = 0.0,
    break_even: Optional[float] = None,
) -> TraceCharacter:
    """Compute the full characterization of a trace."""
    stats = trace.stats()
    periods = trace.idle_periods(service_time)
    positive = periods[periods > 0]
    try:
        tail = hill_tail_index(positive)
    except ValueError:
        tail = None
    try:
        burst = burstiness(trace)
    except ValueError:
        burst = 0.0
    try:
        acf = interarrival_autocorrelation(trace)
    except ValueError:
        acf = 0.0
    longer = None
    if break_even is not None and positive.size:
        longer = float((positive > break_even).mean())
    return TraceCharacter(
        arrival_rate=stats.arrival_rate,
        cv_interarrival=stats.cv_interarrival,
        burstiness=burst,
        lag1_autocorrelation=acf,
        tail_index=tail,
        mean_idle=float(positive.mean()) if positive.size else 0.0,
        idle_longer_than_breakeven=longer,
    )
