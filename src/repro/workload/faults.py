"""Device fault injection: seeded per-device down intervals.

Everything the fleet layer simulates today assumes perfectly reliable
devices; real datacenter DPM operates under failures, and the
energy/latency trade-off changes qualitatively when routers must absorb
failover load.  This module supplies the fault model:

- :class:`FaultProcess` — a *recipe*: alternating up/down durations
  drawn from exponential (MTBF/MTTR means) or deterministic schedules,
  realized per device from a seeded stream so a schedule is a pure
  function of ``(seed, n_devices, horizon)``.  Per-device streams are
  keyed ``(seed, device)``, so device d's fault history never depends on
  the fleet size — the same decorrelation discipline the trace and
  routing streams follow.
- :class:`FaultSchedule` — the *realization*: per-device sorted,
  non-overlapping down intervals ``[start, end)`` over a horizon, with
  point queries (:meth:`FaultSchedule.is_down`), whole-fleet masks
  (:meth:`FaultSchedule.alive_mask` for one instant,
  :meth:`FaultSchedule.down_mask` for a whole time array), and a merged
  transition stream (:meth:`FaultSchedule.transitions`) that the
  vectorized failure-aware routing engine advances incrementally.

Interval convention: a device is **down** on ``[start, end)`` — down at
the instant it fails, up again at the instant repair completes.  Every
query helper follows the same convention, so the scalar and vectorized
routing engines observe bit-identical masks.

Severity: each interval optionally carries a *severity*, a
service-demand multiplier ``>= 1.0``.  ``math.inf`` (the default) is a
fail-stop outage — the device cannot serve at all, exactly the pre-existing
semantics.  A finite severity is a **brownout**: the device stays alive
(``is_down`` is False) but every request dispatched to it during the
interval costs ``severity ×`` its nominal service demand — thermal
throttling or contention rather than a crash.  Fail-stop queries
(``is_down`` / ``alive_mask`` / ``down_mask`` / ``transitions``) see
only infinite-severity intervals; :meth:`FaultSchedule.severity_at`
exposes the demand multiplier (1.0 outside any interval).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


class FaultSchedule:
    """Realized per-device down intervals over ``[0, horizon]``.

    Parameters
    ----------
    down_intervals:
        One sequence per device of ``(start, end)`` pairs or
        ``(start, end, severity)`` triples; each device's intervals must
        be sorted, non-overlapping, and lie within ``[0, horizon]`` with
        ``start < end``.  Severity is a service-demand multiplier
        ``>= 1.0``; omitted or ``math.inf`` means fail-stop, a finite
        value is a brownout (device alive but slowed).
    horizon:
        Observation-window length (> 0); availability is measured
        against it.
    """

    def __init__(
        self,
        down_intervals: Sequence[Sequence[Tuple[float, ...]]],
        horizon: float,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        self.horizon = float(horizon)
        self._starts: List[np.ndarray] = []
        self._ends: List[np.ndarray] = []
        self._sevs: List[np.ndarray] = []
        for d, intervals in enumerate(down_intervals):
            pairs = []
            sevs = []
            for entry in intervals:
                if len(entry) == 3:
                    s, e, sev = entry
                elif len(entry) == 2:
                    s, e = entry
                    sev = math.inf
                else:
                    raise ValueError(
                        f"device {d}: intervals must be (start, end) or "
                        f"(start, end, severity), got {tuple(entry)!r}"
                    )
                pairs.append((float(s), float(e)))
                sevs.append(float(sev))
            starts = np.array([s for s, _ in pairs])
            ends = np.array([e for _, e in pairs])
            sev_arr = np.array(sevs)
            if np.any(starts < 0) or np.any(ends > self.horizon):
                raise ValueError(
                    f"device {d}: down intervals must lie in [0, {horizon}]"
                )
            if np.any(ends <= starts):
                raise ValueError(
                    f"device {d}: intervals need start < end, got {pairs}"
                )
            if starts.size > 1 and np.any(starts[1:] < ends[:-1]):
                raise ValueError(
                    f"device {d}: intervals must be sorted and disjoint"
                )
            if np.any(np.isnan(sev_arr)) or np.any(sev_arr < 1.0):
                raise ValueError(
                    f"device {d}: severities are service-demand "
                    f"multipliers and must be >= 1.0 (inf = fail-stop), "
                    f"got {sevs}"
                )
            self._starts.append(starts)
            self._ends.append(ends)
            self._sevs.append(sev_arr)
        if not self._starts:
            raise ValueError("need at least one device")

    @property
    def n_devices(self) -> int:
        return len(self._starts)

    # ------------------------------------------------------------------ #
    # point queries (the scalar reference semantics)
    # ------------------------------------------------------------------ #

    def is_down(self, device: int, t: float) -> bool:
        """True when ``device`` is fail-stop down at instant ``t``
        (``[start, end)``).  Brownout (finite-severity) intervals leave
        the device alive and are invisible here."""
        starts = self._starts[device]
        i = int(np.searchsorted(starts, t, side="right")) - 1
        return (
            i >= 0
            and t < float(self._ends[device][i])
            and math.isinf(float(self._sevs[device][i]))
        )

    def severity_at(self, device: int, t: float) -> float:
        """Service-demand multiplier for ``device`` at instant ``t``:
        1.0 outside any interval, the interval's severity inside
        (``math.inf`` for fail-stop outages)."""
        starts = self._starts[device]
        i = int(np.searchsorted(starts, t, side="right")) - 1
        if i >= 0 and t < float(self._ends[device][i]):
            return float(self._sevs[device][i])
        return 1.0

    def alive_mask(self, t: float) -> np.ndarray:
        """Boolean ``(n_devices,)`` mask: True where the device is up at
        ``t``.  Both routing engines use this exact function for retry
        probes, so their masks agree bit for bit."""
        return np.array(
            [not self.is_down(d, t) for d in range(self.n_devices)]
        )

    def down_mask(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_down` over a time array: boolean
        ``(T, n_devices)`` where ``[k, d]`` is True iff device ``d`` is
        fail-stop down at ``times[k]``.  One searchsorted per device
        instead of one Python interval lookup per (time, device) pair;
        ``down_mask(t)[k] == ~alive_mask(times[k])`` bit for bit."""
        times = np.asarray(times, dtype=np.float64)
        out = np.zeros((times.size, self.n_devices), dtype=bool)
        for d in range(self.n_devices):
            starts = self._starts[d]
            if starts.size == 0:
                continue
            idx = np.searchsorted(starts, times, side="right") - 1
            inside = idx >= 0
            safe = np.where(inside, idx, 0)
            inside &= times < self._ends[d][safe]
            inside &= np.isinf(self._sevs[d][safe])
            out[:, d] = inside
        return out

    @property
    def has_brownouts(self) -> bool:
        """True when any interval carries a finite (brownout) severity."""
        return any(np.any(np.isfinite(sev)) for sev in self._sevs)

    # ------------------------------------------------------------------ #
    # whole-schedule views
    # ------------------------------------------------------------------ #

    def intervals(self, device: int) -> List[Tuple[float, float]]:
        """The device's intervals as ``(start, end)`` pairs (brownout
        intervals included; see :meth:`interval_severities`)."""
        return list(
            zip(self._starts[device].tolist(), self._ends[device].tolist())
        )

    def interval_severities(self, device: int) -> List[float]:
        """Severity of each interval, aligned with :meth:`intervals`."""
        return self._sevs[device].tolist()

    def transitions(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merged fail-stop fault events: ``(times, devices, down_flags)``.

        Sorted by time (stable); ``down_flags[k]`` is True for a
        failure, False for a repair.  Repairs are emitted before
        failures within each device, so exactly-adjacent intervals
        (``end == next start``) replay to the *down* state at the shared
        instant — intervals are half-open ``[start, end)``.  Applying
        every event with ``time <= t`` to an all-up mask reproduces
        exactly ``~alive_mask(t)``.  Brownout intervals do not take the
        device down and are excluded.
        """
        times = []
        devices = []
        downs = []
        for d in range(self.n_devices):
            stops = np.isinf(self._sevs[d])
            for arr, flag in (
                (self._ends[d][stops], False),
                (self._starts[d][stops], True),
            ):
                times.append(arr)
                devices.append(np.full(arr.size, d, dtype=np.int64))
                downs.append(np.full(arr.size, flag, dtype=bool))
        t = np.concatenate(times) if times else np.empty(0)
        dev = np.concatenate(devices) if devices else np.empty(0, np.int64)
        dn = np.concatenate(downs) if downs else np.empty(0, bool)
        order = np.argsort(t, kind="stable")
        return t[order], dev[order], dn[order]

    def down_time(self, device: int) -> float:
        """Total seconds ``device`` spends fail-stop down within the
        horizon (brownout time is degraded, not down)."""
        stops = np.isinf(self._sevs[device])
        return float(
            (self._ends[device][stops] - self._starts[device][stops]).sum()
        )

    def degraded_time(self, device: int) -> float:
        """Total seconds ``device`` spends browned out (alive but with a
        finite service-demand multiplier) within the horizon."""
        slow = np.isfinite(self._sevs[device])
        return float(
            (self._ends[device][slow] - self._starts[device][slow]).sum()
        )

    def availability(self) -> np.ndarray:
        """Per-device uptime fraction over the horizon."""
        down = np.array([self.down_time(d) for d in range(self.n_devices)])
        return 1.0 - down / self.horizon

    def all_down_at(self, t: float) -> bool:
        """True when not a single device is up at ``t``."""
        return not bool(self.alive_mask(t).any())

    def __repr__(self) -> str:
        n_int = sum(s.size for s in self._starts)
        return (
            f"FaultSchedule(n_devices={self.n_devices}, "
            f"horizon={self.horizon:.6g}, n_down_intervals={n_int})"
        )


@dataclass(frozen=True)
class FaultProcess:
    """Seeded alternating up/down renewal process, one stream per device.

    Every device starts up (unless it belongs to the ``start_down``
    cohort) and alternates: an up period with mean ``mtbf`` seconds,
    then a down period with mean ``mttr`` seconds.  ``deterministic``
    swaps the exponential draws for the exact means — all devices then
    fail in lock-step, the correlated worst case (useful as a degenerate
    stress schedule; the seeded exponential draws are the realistic
    decorrelated default).

    Parameters
    ----------
    mtbf:
        Mean time between failures — expected up-time run length (> 0).
    mttr:
        Mean time to repair — expected down-interval length (> 0).
    deterministic:
        Use the exact means instead of exponential draws.
    start_down:
        Fraction of the fleet (devices ``0 .. floor(f*N)-1``) that
        begins the horizon mid-repair — a cold-start / rolling-outage
        scenario.  Must be < 1: with the whole fleet down at t=0 there
        is no surviving device to fail over to (the sweep spec rejects
        it with a clear error rather than simulating a black hole).
    severity:
        Service-demand multiplier applied during fault intervals
        (``>= 1.0``).  The default ``math.inf`` keeps today's fail-stop
        semantics; a finite value turns every interval into a brownout
        (device alive but ``severity ×`` slower).  A constant — no extra
        RNG draws — so existing fail-stop schedules are bit-unchanged.
    """

    mtbf: float
    mttr: float
    deterministic: bool = False
    start_down: float = 0.0
    severity: float = math.inf

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError(f"mtbf must be > 0, got {self.mtbf}")
        if self.mttr <= 0:
            raise ValueError(f"mttr must be > 0, got {self.mttr}")
        if not 0.0 <= self.start_down < 1.0:
            raise ValueError(
                f"start_down must lie in [0, 1) — a whole fleet down at "
                f"t=0 has no surviving device to fail over to "
                f"(got {self.start_down})"
            )
        if math.isnan(self.severity) or self.severity < 1.0:
            raise ValueError(
                f"severity is a service-demand multiplier and must be "
                f">= 1.0 (inf = fail-stop), got {self.severity}"
            )

    def _durations(self, rng: np.random.Generator, mean: float) -> float:
        return mean if self.deterministic else float(rng.exponential(mean))

    def realize(
        self, n_devices: int, horizon: float, seed: int = 0
    ) -> FaultSchedule:
        """Draw one :class:`FaultSchedule` — a pure function of
        ``(n_devices, horizon, seed)``; device ``d``'s stream is keyed
        ``(seed, d)``, so its fault history is independent of the fleet
        size and of every other device."""
        if int(n_devices) < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        n_start_down = int(np.floor(self.start_down * int(n_devices)))
        sev = float(self.severity)
        intervals: List[List[Tuple[float, float, float]]] = []
        for d in range(int(n_devices)):
            rng = np.random.default_rng([int(seed), d])
            spans: List[Tuple[float, float, float]] = []
            t = 0.0
            if d < n_start_down:
                down = self._durations(rng, self.mttr)
                spans.append((0.0, min(down, horizon), sev))
                t = down
            while t < horizon:
                t += self._durations(rng, self.mtbf)
                if t >= horizon:
                    break
                down = self._durations(rng, self.mttr)
                spans.append((t, min(t + down, horizon), sev))
                t += down
            intervals.append(spans)
        return FaultSchedule(intervals, horizon)


def no_faults(n_devices: int, horizon: float) -> FaultSchedule:
    """An always-up schedule (the reliability baseline in tests)."""
    return FaultSchedule([[] for _ in range(int(n_devices))], horizon)


def resolve_fault_schedule(
    faults, n_devices: int, horizon: float, seed: int = 0
) -> Optional[FaultSchedule]:
    """Accept a :class:`FaultSchedule`, a :class:`FaultProcess` (realized
    with ``seed``), or None — the polymorphic ``faults`` argument the
    fleet entry points take."""
    if faults is None:
        return None
    if isinstance(faults, FaultSchedule):
        if faults.n_devices != int(n_devices):
            raise ValueError(
                f"fault schedule covers {faults.n_devices} devices, "
                f"fleet has {n_devices}"
            )
        return faults
    if isinstance(faults, FaultProcess):
        return faults.realize(n_devices, horizon, seed=seed)
    raise TypeError(
        f"faults must be a FaultSchedule, FaultProcess, or None, "
        f"got {type(faults)!r}"
    )
