"""Markov-modulated Poisson process (MMPP) request source.

An MMPP is a Poisson process whose rate is selected by a hidden
continuous-time Markov chain.  It is the canonical synthetic model of
*regime-switching* workloads in the stochastic-DPM literature: within a
regime the input looks stationary, and regime changes are exactly the
"switching points" of the paper's Fig. 2.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .trace import Trace


class MMPP:
    """Markov-modulated Poisson arrival source.

    Parameters
    ----------
    rates:
        Poisson arrival rate per hidden regime (len R, each >= 0; a rate
        of 0 models an OFF regime).
    switching:
        R x R continuous-time generator-like matrix of regime-switch
        rates: ``switching[i][j]`` is the rate of jumping ``i -> j``
        (diagonal ignored).  Rows may be all-zero (absorbing regime).
    """

    def __init__(
        self,
        rates: Sequence[float],
        switching: Sequence[Sequence[float]],
    ) -> None:
        self._rates = np.asarray(rates, dtype=float)
        self._switch = np.asarray(switching, dtype=float).copy()
        n = self._rates.size
        if self._switch.shape != (n, n):
            raise ValueError(
                f"switching matrix must be {n}x{n}, got {self._switch.shape}"
            )
        if np.any(self._rates < 0):
            raise ValueError("regime rates must be >= 0")
        off_diag = self._switch.copy()
        np.fill_diagonal(off_diag, 0.0)
        if np.any(off_diag < 0):
            raise ValueError("switching rates must be >= 0")
        np.fill_diagonal(self._switch, 0.0)

    @property
    def n_regimes(self) -> int:
        """Number of hidden regimes."""
        return int(self._rates.size)

    @property
    def rates(self) -> np.ndarray:
        """Copy of the per-regime arrival rates."""
        return self._rates.copy()

    def generate(
        self,
        duration: float,
        rng: np.random.Generator,
        initial_regime: int = 0,
    ) -> Tuple[Trace, list]:
        """Simulate the MMPP for ``duration`` seconds.

        Returns
        -------
        (trace, regime_intervals):
            The arrival :class:`~repro.workload.trace.Trace` and a list of
            ``(start_time, regime_index)`` marking each regime entered —
            these are the ground-truth switching points for Fig. 2-style
            plots.
        """
        if duration <= 0:
            raise ValueError("duration must be > 0")
        if not 0 <= initial_regime < self.n_regimes:
            raise ValueError(f"initial_regime out of range: {initial_regime}")
        t = 0.0
        regime = initial_regime
        arrivals: list = []
        intervals = [(0.0, regime)]
        while t < duration:
            out_rates = self._switch[regime]
            total_out = float(out_rates.sum())
            # time until the regime changes (inf if absorbing)
            dwell = rng.exponential(1.0 / total_out) if total_out > 0 else np.inf
            segment_end = min(duration, t + dwell)
            lam = self._rates[regime]
            if lam > 0:
                # Poisson arrivals on [t, segment_end)
                n = rng.poisson(lam * (segment_end - t))
                if n:
                    pts = np.sort(rng.uniform(t, segment_end, size=n))
                    arrivals.extend(pts.tolist())
            t = segment_end
            if t < duration:
                probs = out_rates / total_out
                regime = int(rng.choice(self.n_regimes, p=probs))
                intervals.append((t, regime))
        return Trace(arrivals, duration=duration), intervals


def two_regime_mmpp(
    busy_rate: float,
    quiet_rate: float,
    mean_busy_dwell: float,
    mean_quiet_dwell: float,
) -> MMPP:
    """Convenience constructor: the classic busy/quiet two-regime MMPP."""
    if mean_busy_dwell <= 0 or mean_quiet_dwell <= 0:
        raise ValueError("dwell times must be > 0")
    return MMPP(
        rates=[busy_rate, quiet_rate],
        switching=[
            [0.0, 1.0 / mean_busy_dwell],
            [1.0 / mean_quiet_dwell, 0.0],
        ],
    )
