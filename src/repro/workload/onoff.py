"""ON/OFF bursty request source.

Alternates ON periods (dense request bursts at a fixed intra-burst gap or
Poisson rate) with OFF silences drawn from an arbitrary distribution.
This is the simplest generator that produces the *long idle period*
structure timeout and predictive policies are designed around, and it
complements :mod:`repro.workload.mmpp` with deterministic burst shapes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .arrivals import InterArrival
from .trace import Trace


class OnOffSource:
    """Bursty ON/OFF arrival source.

    Parameters
    ----------
    on_duration:
        Distribution of ON-period lengths (seconds).
    off_duration:
        Distribution of OFF-period (silence) lengths.
    intra_gap:
        Distribution of gaps between requests *within* an ON period.
    """

    def __init__(
        self,
        on_duration: InterArrival,
        off_duration: InterArrival,
        intra_gap: InterArrival,
    ) -> None:
        self._on = on_duration
        self._off = off_duration
        self._gap = intra_gap

    def generate(
        self,
        duration: float,
        rng: np.random.Generator,
        start_on: bool = True,
    ) -> Trace:
        """Simulate the source for ``duration`` seconds and return a trace."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        t = 0.0
        on = start_on
        arrivals: list = []
        while t < duration:
            if on:
                burst_len = float(self._on.sample(rng, 1)[0])
                burst_end = min(duration, t + burst_len)
                # first request at burst start, subsequent ones gap-spaced
                pos = t
                while pos < burst_end:
                    arrivals.append(pos)
                    pos += float(self._gap.sample(rng, 1)[0])
                t = burst_end
            else:
                t += float(self._off.sample(rng, 1)[0])
            on = not on
        return Trace(arrivals, duration=duration)

    def expected_rate(self) -> float:
        """Long-run average request rate (requests per second).

        Uses renewal-reward over ON+OFF cycles; returns 0 when any of the
        component means is infinite (heavy-tailed silences).
        """
        on_mean = self._on.mean()
        off_mean = self._off.mean()
        gap_mean = self._gap.mean()
        if any(np.isinf(m) for m in (on_mean, off_mean, gap_mean)):
            return 0.0
        if gap_mean <= 0:
            return 0.0
        per_cycle = on_mean / gap_mean
        return per_cycle / (on_mean + off_mean)
