"""Inter-arrival time distributions for renewal-process request generators.

The Q-DPM paper drives all simulations with *synthetic input*.  The
standard synthetic families in the DPM literature are renewal processes
with exponential (memoryless — the base case of every stochastic DPM
model), Pareto (heavy-tailed idle periods, the empirical finding of Paleologo
et al.), hyper-exponential (bursty two-regime), uniform, deterministic,
and Weibull inter-arrival times.  All are provided here behind one small
abstract interface so trace generators and estimators can be written once.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Sequence, Type

import numpy as np


class InterArrival(ABC):
    """Distribution of the time between consecutive service requests."""

    #: registry name, set by subclasses
    kind: str = "abstract"

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` i.i.d. inter-arrival times (seconds, > 0)."""

    @abstractmethod
    def mean(self) -> float:
        """Expected inter-arrival time (may be ``inf`` for heavy tails)."""

    def rate(self) -> float:
        """Long-run arrival rate = 1 / mean (0 if the mean is infinite)."""
        m = self.mean()
        return 0.0 if math.isinf(m) else 1.0 / m

    @abstractmethod
    def params(self) -> dict:
        """Distribution parameters, for serialization and reporting."""

    def to_dict(self) -> dict:
        """Serialize as ``{"kind": ..., **params}``."""
        out = {"kind": self.kind}
        out.update(self.params())
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({inner})"


class Exponential(InterArrival):
    """Memoryless inter-arrivals: a Poisson request process of given rate."""

    kind = "exponential"

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self._rate = rate

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.exponential(1.0 / self._rate, size=size)

    def mean(self) -> float:
        return 1.0 / self._rate

    def params(self) -> dict:
        return {"rate": self._rate}


class Deterministic(InterArrival):
    """Perfectly periodic requests (e.g. isochronous media traffic)."""

    kind = "deterministic"

    def __init__(self, period: float) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self._period = period

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return np.full(size, self._period)

    def mean(self) -> float:
        return self._period

    def params(self) -> dict:
        return {"period": self._period}


class Uniform(InterArrival):
    """Inter-arrivals uniform on ``[low, high]``."""

    kind = "uniform"

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        if high == 0:
            raise ValueError("high must be > 0")
        self._low = low
        self._high = high

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.uniform(self._low, self._high, size=size)

    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    def params(self) -> dict:
        return {"low": self._low, "high": self._high}


class Pareto(InterArrival):
    """Heavy-tailed inter-arrivals (Lomax/Pareto-II with scale ``xm``).

    Density ``f(t) = alpha * xm^alpha / (t + xm)^(alpha+1)`` for t >= 0.
    ``alpha <= 1`` gives an infinite mean — accepted, but :meth:`rate`
    reports 0 and generators bound trace length by time, not count.
    """

    kind = "pareto"

    def __init__(self, alpha: float, xm: float) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        if xm <= 0:
            raise ValueError(f"xm must be > 0, got {xm}")
        self._alpha = alpha
        self._xm = xm

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        # numpy's pareto draws (X - 1) for the Pareto-I with xm = 1.
        return self._xm * rng.pareto(self._alpha, size=size)

    def mean(self) -> float:
        if self._alpha <= 1:
            return math.inf
        return self._xm / (self._alpha - 1)

    def params(self) -> dict:
        return {"alpha": self._alpha, "xm": self._xm}


class HyperExponential(InterArrival):
    """Mixture of exponentials — the classic bursty/two-regime model.

    With probability ``probs[i]`` a draw comes from an exponential of
    ``rates[i]``.  Two well-separated rates model interactive workloads:
    short intra-burst gaps and long inter-burst silences.
    """

    kind = "hyperexponential"

    def __init__(self, rates: Sequence[float], probs: Sequence[float]) -> None:
        rates = list(rates)
        probs = list(probs)
        if len(rates) != len(probs) or not rates:
            raise ValueError("rates and probs must be equal-length, non-empty")
        if any(r <= 0 for r in rates):
            raise ValueError(f"all rates must be > 0, got {rates}")
        if any(p < 0 for p in probs) or abs(sum(probs) - 1.0) > 1e-9:
            raise ValueError(f"probs must be >= 0 and sum to 1, got {probs}")
        self._rates = rates
        self._probs = probs

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        branch = rng.choice(len(self._rates), size=size, p=self._probs)
        scales = 1.0 / np.asarray(self._rates)
        return rng.exponential(scales[branch])

    def mean(self) -> float:
        return float(sum(p / r for p, r in zip(self._probs, self._rates)))

    def params(self) -> dict:
        return {"rates": list(self._rates), "probs": list(self._probs)}


class Weibull(InterArrival):
    """Weibull inter-arrivals; ``shape < 1`` gives bursty clustering."""

    kind = "weibull"

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0:
            raise ValueError(f"shape must be > 0, got {shape}")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self._shape = shape
        self._scale = scale

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return self._scale * rng.weibull(self._shape, size=size)

    def mean(self) -> float:
        return self._scale * math.gamma(1.0 + 1.0 / self._shape)

    def params(self) -> dict:
        return {"shape": self._shape, "scale": self._scale}


#: Registry of distribution classes by ``kind``.
DISTRIBUTIONS: Dict[str, Type[InterArrival]] = {
    cls.kind: cls
    for cls in (Exponential, Deterministic, Uniform, Pareto, HyperExponential, Weibull)
}


def from_dict(data: dict) -> InterArrival:
    """Instantiate a distribution from its :meth:`InterArrival.to_dict` form."""
    data = dict(data)
    kind = data.pop("kind")
    try:
        cls = DISTRIBUTIONS[kind]
    except KeyError:
        raise KeyError(
            f"unknown inter-arrival kind {kind!r}; known: {sorted(DISTRIBUTIONS)}"
        )
    return cls(**data)
