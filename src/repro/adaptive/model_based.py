"""The model-based adaptive DPM controller — the technique Q-DPM replaces.

Implements the full classical pipeline the paper describes:

    parameter estimator  ->  mode-switch controller  ->  policy optimizer

On every slot it executes its current optimal policy, feeds the arrival
indicator to the estimator and the change detector, and when the detector
fires it re-estimates the arrival rate, rebuilds the exact DTMDP, and
re-runs the offline optimizer (LP by default — the one the paper times).
All overheads are metered: number of re-optimizations, wall-clock spent
in estimation + optimization, and (optionally) a *decision freeze* that
models the policy being stale while the slow optimizer runs on an
embedded CPU.

Interface-compatible with :class:`repro.core.QDPM` (same ``run`` /
``RunHistory``), so the Fig. 2 harness can overlay both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.qdpm import RunHistory
from ..env.model_builder import build_dpm_model
from ..env.slotted_env import SlottedDPMEnv
from ..mdp import DeterministicPolicy
from .change_detect import BernoulliCUSUM
from .estimator import SlidingWindowEstimator


@dataclass
class AdaptationEvent:
    """One re-optimization performed by the controller."""

    slot: int              #: slot at which the new policy took effect
    detected_rate: float   #: rate estimate used for the rebuild
    optimize_seconds: float  #: wall-clock cost of model build + solve


@dataclass
class AdaptationLog:
    """All overhead bookkeeping of one run."""

    events: List[AdaptationEvent] = field(default_factory=list)
    estimator_seconds: float = 0.0
    detector_seconds: float = 0.0

    @property
    def n_reoptimizations(self) -> int:
        return len(self.events)

    @property
    def optimize_seconds(self) -> float:
        return sum(e.optimize_seconds for e in self.events)

    def total_overhead_seconds(self) -> float:
        """Estimation + detection + optimization wall clock."""
        return self.estimator_seconds + self.detector_seconds + self.optimize_seconds


class ModelBasedAdaptiveDPM:
    """Estimator + change detector + offline optimizer, online.

    Parameters
    ----------
    env:
        The slotted environment to control (same instance type Q-DPM
        controls).
    discount:
        Discount factor for the offline solver.
    solver:
        ``"linear_programming"`` (the paper's target), ``"policy_iteration"``
        or ``"value_iteration"``.
    estimator:
        Rate estimator; defaults to a 2000-slot sliding window.
    detector:
        Change detector; defaults to a :class:`BernoulliCUSUM` armed at
        the initial estimate.
    min_samples:
        Samples the estimator must hold before a re-optimization is
        trusted (prevents thrashing right after a detection reset).
    freeze_slots:
        Decision-latency model: for this many slots after a detection the
        controller keeps running the *stale* policy, emulating the time
        the optimizer needs on the target CPU.  0 = optimizer is free.
    initial_rate:
        Rate used to build the first policy.
    """

    def __init__(
        self,
        env: SlottedDPMEnv,
        discount: float = 0.95,
        solver: str = "linear_programming",
        estimator: Optional[SlidingWindowEstimator] = None,
        detector: Optional[BernoulliCUSUM] = None,
        min_samples: int = 500,
        freeze_slots: int = 0,
        initial_rate: float = 0.2,
    ) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if freeze_slots < 0:
            raise ValueError("freeze_slots must be >= 0")
        self.env = env
        self.discount = float(discount)
        self.solver = solver
        self.estimator = (
            estimator if estimator is not None else SlidingWindowEstimator(2000)
        )
        self.detector = (
            detector if detector is not None else BernoulliCUSUM(initial_rate)
        )
        self.min_samples = int(min_samples)
        self.freeze_slots = int(freeze_slots)
        self.log = AdaptationLog()
        self._policy = self._optimize(initial_rate, slot=0, record=False)
        self._pending_since: Optional[int] = None

    @property
    def policy(self) -> DeterministicPolicy:
        """The policy currently executed."""
        return self._policy

    def _optimize(
        self, rate: float, slot: int, record: bool = True
    ) -> DeterministicPolicy:
        """Rebuild the exact model at ``rate`` and solve it."""
        start = time.perf_counter()
        model = build_dpm_model(
            self.env.device,
            arrival_rate=rate,
            slot_length=self.env.slot_length,
            queue_capacity=self.env.queue_capacity,
            p_serve=self.env.p_serve,
            perf_weight=self.env.perf_weight,
            loss_penalty=self.env.loss_penalty,
        )
        result = model.solve(self.discount, self.solver)
        elapsed = time.perf_counter() - start
        if record:
            self.log.events.append(
                AdaptationEvent(slot=slot, detected_rate=rate, optimize_seconds=elapsed)
            )
        return result.policy

    def run(self, n_slots: int, record_every: int = 1000) -> RunHistory:
        """Control the environment for ``n_slots`` slots.

        Returns the same :class:`~repro.core.qdpm.RunHistory` Q-DPM
        produces (``td_error`` is zero — there is no TD learning here);
        re-optimization instants are in :attr:`log`.
        """
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if record_every < 1:
            raise ValueError(f"record_every must be >= 1, got {record_every}")
        always_on = self.env.always_on_power() * self.env.slot_length

        slots: List[int] = []
        energy: List[float] = []
        reward_hist: List[float] = []
        queue_hist: List[float] = []
        saving: List[float] = []

        win_energy = win_reward = win_queue = 0.0
        win_count = 0
        for _ in range(n_slots):
            state = self.env.state
            action = self._policy(state)
            if action not in self.env.allowed_actions(state):
                # stale policy may command an illegal action mid-transition;
                # fall back to the forced action
                action = self.env.allowed_actions(state)[0]
            _, reward, info = self.env.step(action)

            t0 = time.perf_counter()
            self.estimator.update(info.arrived)
            self.log.estimator_seconds += time.perf_counter() - t0

            t0 = time.perf_counter()
            alarm = self.detector.update(info.arrived)
            self.log.detector_seconds += time.perf_counter() - t0

            if alarm and self._pending_since is None:
                # change detected: restart estimation on post-change data
                self.estimator.reset()
                self._pending_since = info.slot
            if (
                self._pending_since is not None
                and self.estimator.n_samples >= self.min_samples
                and info.slot - self._pending_since >= self.freeze_slots
            ):
                new_rate = self.estimator.estimate()
                self._policy = self._optimize(new_rate, slot=info.slot)
                self.detector.reset(new_rate)
                self._pending_since = None

            win_energy += info.energy
            win_reward += reward
            win_queue += info.queue
            win_count += 1
            if win_count == record_every:
                slots.append(info.slot)
                energy.append(win_energy / win_count)
                reward_hist.append(win_reward / win_count)
                queue_hist.append(win_queue / win_count)
                ratio = (
                    1.0 - (win_energy / win_count) / always_on if always_on > 0 else 0.0
                )
                saving.append(ratio)
                win_energy = win_reward = win_queue = 0.0
                win_count = 0
        if win_count:
            slots.append(self.env.current_slot - 1)
            energy.append(win_energy / win_count)
            reward_hist.append(win_reward / win_count)
            queue_hist.append(win_queue / win_count)
            ratio = 1.0 - (win_energy / win_count) / always_on if always_on > 0 else 0.0
            saving.append(ratio)
        zeros = np.zeros(len(slots))
        return RunHistory(
            slots=np.asarray(slots),
            energy=np.asarray(energy),
            reward=np.asarray(reward_hist),
            queue=np.asarray(queue_hist),
            saving_ratio=np.asarray(saving),
            td_error=zeros,
        )
