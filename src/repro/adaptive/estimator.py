"""Workload parameter estimation — the component Q-DPM deletes.

A model-based DPM controller must estimate the workload parameters before
it can optimize a policy.  For the slotted environment the unknown is the
per-slot Bernoulli arrival probability; the estimators here are the two
standard causal choices:

- :class:`SlidingWindowEstimator` — MLE over the last ``window`` slots
  (unbiased, lag ~ window/2 after a switch);
- :class:`ExponentialEstimator` — exponentially weighted moving average
  (cheaper memory, tunable lag).

The paper's complaint: "the parameter estimation also consumes a lot of
time to maintain a reasonable accuracy".  The CLAIM-EFF bench counts this
cost; the Fig. 2 harness exposes the estimation *lag*.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np


class SlidingWindowEstimator:
    """MLE of a Bernoulli rate over a fixed-length sliding window."""

    def __init__(self, window: int = 2000, prior_rate: float = 0.5) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 <= prior_rate <= 1.0:
            raise ValueError(f"prior_rate must be in [0, 1], got {prior_rate}")
        self._window = int(window)
        self._prior = float(prior_rate)
        self._buffer: Deque[int] = deque(maxlen=self._window)
        self._sum = 0

    @property
    def window(self) -> int:
        """Window length in slots."""
        return self._window

    @property
    def n_samples(self) -> int:
        """Number of observations currently in the window."""
        return len(self._buffer)

    def update(self, arrived: bool) -> None:
        """Feed one slot's arrival indicator."""
        x = int(bool(arrived))
        if len(self._buffer) == self._window:
            self._sum -= self._buffer[0]
        self._buffer.append(x)
        self._sum += x

    def estimate(self) -> float:
        """Current rate estimate (prior until the window has samples)."""
        if not self._buffer:
            return self._prior
        return self._sum / len(self._buffer)

    def reset(self, prior_rate: Optional[float] = None) -> None:
        """Drop the window (e.g. after a detected regime change)."""
        if prior_rate is not None:
            if not 0.0 <= prior_rate <= 1.0:
                raise ValueError("prior_rate must be in [0, 1]")
            self._prior = float(prior_rate)
        self._buffer.clear()
        self._sum = 0

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation CI of the current estimate."""
        n = max(1, len(self._buffer))
        p = self.estimate()
        half = z * np.sqrt(max(p * (1.0 - p), 1e-12) / n)
        return (max(0.0, p - half), min(1.0, p + half))


class ExponentialEstimator:
    """EWMA rate estimator: ``p <- (1 - a) p + a x``."""

    def __init__(self, smoothing: float = 0.01, prior_rate: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if not 0.0 <= prior_rate <= 1.0:
            raise ValueError(f"prior_rate must be in [0, 1], got {prior_rate}")
        self._alpha = float(smoothing)
        self._prior = float(prior_rate)
        self._estimate = float(prior_rate)
        self._n = 0

    @property
    def n_samples(self) -> int:
        """Number of updates seen since the last reset."""
        return self._n

    def update(self, arrived: bool) -> None:
        """Feed one slot's arrival indicator."""
        x = float(bool(arrived))
        self._estimate = (1.0 - self._alpha) * self._estimate + self._alpha * x
        self._n += 1

    def estimate(self) -> float:
        """Current rate estimate."""
        return self._estimate

    def reset(self, prior_rate: Optional[float] = None) -> None:
        """Forget history (restart from the prior)."""
        if prior_rate is not None:
            if not 0.0 <= prior_rate <= 1.0:
                raise ValueError("prior_rate must be in [0, 1]")
            self._prior = float(prior_rate)
        self._estimate = self._prior
        self._n = 0
