"""Model-based adaptive DPM: estimator, change detection, re-optimization."""

from .change_detect import BernoulliCUSUM, PageHinkley
from .estimator import ExponentialEstimator, SlidingWindowEstimator
from .model_based import AdaptationEvent, AdaptationLog, ModelBasedAdaptiveDPM

__all__ = [
    "SlidingWindowEstimator",
    "ExponentialEstimator",
    "BernoulliCUSUM",
    "PageHinkley",
    "ModelBasedAdaptiveDPM",
    "AdaptationEvent",
    "AdaptationLog",
]
