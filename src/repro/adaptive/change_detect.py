"""Parameter-change detection — the paper's "mode-switch controller".

A model-based adaptive DPM re-optimizes only when it believes the
workload parameters changed; the component that decides this is what the
paper calls the mode-switch controller and describes as "fairly time
consuming".  Two standard sequential detectors over the per-slot arrival
indicator stream:

- :class:`BernoulliCUSUM` — two-sided CUSUM of the standardized deviation
  from the currently assumed rate;
- :class:`PageHinkley` — Page-Hinkley cumulative-deviation test.

Both expose ``update(x) -> bool`` (True = alarm) and carry the
detection-delay bookkeeping the Fig. 2 analysis reports.
"""

from __future__ import annotations

import math
from typing import Optional


class BernoulliCUSUM:
    """Two-sided CUSUM detector for a Bernoulli stream.

    Monitors ``g+ = max(0, g+ + (x - p0 - drift))`` and the symmetric
    ``g-``; alarms when either exceeds ``threshold``.  ``drift`` sets the
    smallest shift treated as a real change (in probability units);
    ``threshold`` trades detection delay against false alarms.
    """

    def __init__(
        self,
        target_rate: float,
        drift: float = 0.05,
        threshold: float = 20.0,
    ) -> None:
        if not 0.0 <= target_rate <= 1.0:
            raise ValueError(f"target_rate must be in [0, 1], got {target_rate}")
        if drift < 0:
            raise ValueError(f"drift must be >= 0, got {drift}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self._p0 = float(target_rate)
        self._drift = float(drift)
        self._threshold = float(threshold)
        self._g_pos = 0.0
        self._g_neg = 0.0
        self._since_reset = 0

    @property
    def target_rate(self) -> float:
        """The rate currently assumed to be in force."""
        return self._p0

    @property
    def slots_since_reset(self) -> int:
        """Observations consumed since the last (re)arming."""
        return self._since_reset

    def update(self, arrived: bool) -> bool:
        """Feed one observation; True means "parameter change detected"."""
        x = float(bool(arrived))
        self._since_reset += 1
        self._g_pos = max(0.0, self._g_pos + (x - self._p0 - self._drift))
        self._g_neg = max(0.0, self._g_neg + (self._p0 - x - self._drift))
        return self._g_pos > self._threshold or self._g_neg > self._threshold

    def reset(self, target_rate: Optional[float] = None) -> None:
        """Re-arm, optionally around a new assumed rate."""
        if target_rate is not None:
            if not 0.0 <= target_rate <= 1.0:
                raise ValueError("target_rate must be in [0, 1]")
            self._p0 = float(target_rate)
        self._g_pos = 0.0
        self._g_neg = 0.0
        self._since_reset = 0


class PageHinkley:
    """Page-Hinkley test on the running mean of the stream.

    Tracks ``m_t = sum (x_i - mean_i - delta)`` and alarms when
    ``max(m) - m_t > lambda_`` (downward shift) or the symmetric upward
    statistic trips.  Parameter names follow the usual PH formulation.
    """

    def __init__(self, delta: float = 0.02, lambda_: float = 50.0) -> None:
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if lambda_ <= 0:
            raise ValueError(f"lambda_ must be > 0, got {lambda_}")
        self._delta = float(delta)
        self._lambda = float(lambda_)
        self.reset()

    def update(self, arrived: bool) -> bool:
        """Feed one observation; True means "change detected"."""
        x = float(bool(arrived))
        self._n += 1
        self._mean += (x - self._mean) / self._n
        self._m_down += x - self._mean + self._delta
        self._m_up += x - self._mean - self._delta
        self._max_down = max(self._max_down, self._m_down)
        self._min_up = min(self._min_up, self._m_up)
        down_trip = self._max_down - self._m_down > self._lambda
        up_trip = self._m_up - self._min_up > self._lambda
        return down_trip or up_trip

    def reset(self, target_rate: Optional[float] = None) -> None:
        """Re-arm; ``target_rate`` seeds the running mean if given."""
        self._n = 0
        self._mean = float(target_rate) if target_rate is not None else 0.0
        if target_rate is not None:
            self._n = 1
        self._m_down = 0.0
        self._m_up = 0.0
        self._max_down = 0.0
        self._min_up = 0.0

    @property
    def running_mean(self) -> float:
        """Current running mean of the stream."""
        return self._mean
