"""Command-line entry point: run any reproduction experiment.

Usage::

    python -m repro fig1            # Fig. 1  convergence on optimal policy
    python -m repro fig2            # Fig. 2  rapid response
    python -m repro overhead        # CLAIM-EFF / CLAIM-MEM tables
    python -m repro variation       # CLAIM-VAR drift tolerance
    python -m repro policies        # EXT-POLICY event-driven table
    python -m repro all             # everything, in order

Each command prints the same ASCII figure/table recorded in
EXPERIMENTS.md.  ``--quick`` shrinks horizons ~10x for smoke runs.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, List, Optional

from .experiments import (
    Fig1Config,
    Fig2Config,
    OverheadConfig,
    PolicyTableConfig,
    VariationConfig,
    run_fig1,
    run_fig2,
    run_overhead,
    run_policy_table,
    run_variation,
)


def _fig1(quick: bool) -> str:
    config = Fig1Config()
    if quick:
        config = dataclasses.replace(config, n_slots=30_000, record_every=1_000)
    return run_fig1(config).render()


def _fig2(quick: bool) -> str:
    config = Fig2Config()
    if quick:
        config = dataclasses.replace(
            config, segment_slots=8_000, record_every=500, mb_min_samples=400,
            mb_freeze_slots=800,
        )
    return run_fig2(config).render()


def _overhead(quick: bool) -> str:
    config = OverheadConfig()
    if quick:
        config = dataclasses.replace(
            config, queue_capacities=(4, 8), n_q_ops=2_000
        )
    return run_overhead(config).render()


def _variation(quick: bool) -> str:
    config = VariationConfig()
    if quick:
        config = dataclasses.replace(
            config, n_slots=20_000, warmup_slots=15_000
        )
    return run_variation(config).render()


def _policies(quick: bool) -> str:
    config = PolicyTableConfig()
    if quick:
        config = dataclasses.replace(config, duration=5_000.0)
    return run_policy_table(config).render()


_COMMANDS: Dict[str, Callable[[bool], str]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "overhead": _overhead,
    "variation": _variation,
    "policies": _policies,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-qdpm",
        description="Reproduce the experiments of the Q-DPM paper (DATE 2005).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink horizons ~10x for a fast smoke run",
    )
    args = parser.parse_args(argv)

    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        print(_COMMANDS[name](args.quick))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
