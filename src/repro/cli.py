"""Command-line entry point: run any reproduction experiment.

Usage::

    python -m repro fig1            # Fig. 1  convergence on optimal policy
    python -m repro fig2            # Fig. 2  rapid response
    python -m repro overhead        # CLAIM-EFF / CLAIM-MEM tables
    python -m repro variation       # CLAIM-VAR drift tolerance
    python -m repro policies        # EXT-POLICY event-driven table
    python -m repro grid            # GRID rate x device x controller table
    python -m repro sim-sweep       # SIM-SWEEP device x trace x policy CIs
    python -m repro fleet-sweep     # FLEET-SWEEP fleet x router x policy CIs
    python -m repro all             # everything, in order
    python -m repro sweep --seeds 8 # multi-seed CI sweep of fig1/fig2/variation

Each command prints the same ASCII figure/table recorded in
EXPERIMENTS.md.  ``--quick`` shrinks horizons ~10x for smoke runs.
``--seeds N`` runs N independent seeds lock-step on the batched engine
(:mod:`repro.runtime`) and adds bootstrap CIs; ``--batch B`` caps the
replicas per lock-step batch; ``--jobs J`` shards seed chunks (and grid
cells / policy-table cells) across J worker processes — results are
bit-identical at any job count.  ``fleet-sweep`` additionally takes
``--devices N`` (fleet size) and ``--router NAME`` (single routing
policy) to zoom the dispatch grid, ``--mtbf`` / ``--mttr`` to inject
seeded device failures (with ``--max-retries`` bounding failover
retries before a request drops), and ``--checkpoint PATH`` to journal
completed chunks — rerun with ``--resume`` to pick up an interrupted
sweep bit-identically instead of starting over.  The overload knobs
layer graceful degradation on top: ``--brownout-severity M`` turns
fault intervals into brownouts that multiply service demand by M
instead of stopping the device, ``--slo S`` sheds requests whose
predicted completion misses the ``arrival + S`` deadline, ``--breaker
K`` arms per-device circuit breakers that open after K consecutive
failures, and ``--retry-budget C`` caps fleet-wide failover retries
with a C-token bucket (exhaustion sheds instead of retry-storming).

``--verify P`` shadow-runs fraction P of seed chunks / cells on the
scalar reference path and compares field-for-field (any divergence
aborts); ``--diagnostics DIR`` writes minimal-repro JSON bundles on
invariant violations or worker failures.  Ctrl-C (or SIGTERM) during a
checkpointed sweep flushes the journal, prints a one-line resume hint,
and exits with status 130.

Telemetry (:mod:`repro.runtime.telemetry`) rides along on any
experiment: ``--trace FILE`` records hierarchical spans (including from
pool workers) and writes a Chrome trace-event file — open it in
Perfetto or chrome://tracing; one track per worker — or a JSONL event
stream when FILE ends in ``.jsonl``; ``--metrics`` prints the
end-of-run metrics summary table; ``--progress`` shows a live
chunks-done/throughput/ETA line.  All three write to **stderr** (and
the progress line degrades to plain periodic lines off-TTY, honoring
``NO_COLOR``), so piped stdout stays machine-parseable; none of them
touches an RNG stream — traced results are bit-identical to untraced
ones.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import Callable, Dict, List, Optional

from .experiments import (
    Fig1Config,
    Fig2Config,
    FleetConfig,
    GridConfig,
    OverheadConfig,
    PolicyTableConfig,
    SimSweepConfig,
    VariationConfig,
    run_fig1,
    run_fig2,
    run_fleet_sweep,
    run_grid,
    run_overhead,
    run_policy_table,
    run_sim_sweep,
    run_variation,
)
from .fleet import ROUTERS
from .runtime.telemetry import TELEMETRY, export_trace
from .runtime.verify import SweepInterrupted


def _sweep_settings(config, n_seeds: Optional[int], batch: Optional[int],
                    jobs: Optional[int] = None,
                    verify: Optional[float] = None,
                    diagnostics: Optional[str] = None):
    """Overlay CLI sweep flags onto a config's ``sweep`` block."""
    sweep = config.sweep
    if n_seeds is not None:
        sweep = dataclasses.replace(sweep, n_seeds=n_seeds)
    if batch is not None:
        sweep = dataclasses.replace(sweep, batch_size=batch)
    if jobs is not None:
        sweep = dataclasses.replace(sweep, n_jobs=jobs)
    if verify is not None:
        sweep = dataclasses.replace(sweep, verify_fraction=verify)
    if diagnostics is not None:
        sweep = dataclasses.replace(sweep, diagnostics_dir=diagnostics)
    return dataclasses.replace(config, sweep=sweep)


def _verification_line(execution) -> str:
    """One-line shadow-verification summary for a sweep's metadata."""
    block = (execution or {}).get("verification")
    if not block:
        return ""
    if "skipped" in block:
        return f"verification: skipped — {block['skipped']}"
    return (
        f"verification: {block['n_verified']}/{block['n_chunks']} chunks "
        f"shadow-verified against {block['reference']} — "
        f"{block['n_divergences']} divergence(s)"
    )


def _fig1(quick: bool, n_seeds: Optional[int] = None,
          batch: Optional[int] = None, jobs: Optional[int] = None,
          verify: Optional[float] = None,
          diagnostics: Optional[str] = None) -> str:
    config = Fig1Config()
    if quick:
        config = dataclasses.replace(config, n_slots=30_000, record_every=1_000)
    result = run_fig1(
        _sweep_settings(config, n_seeds, batch, jobs, verify, diagnostics)
    )
    line = _verification_line(result.execution)
    return result.render() + ("\n" + line if line else "")


def _fig2(quick: bool, n_seeds: Optional[int] = None,
          batch: Optional[int] = None, jobs: Optional[int] = None,
          verify: Optional[float] = None,
          diagnostics: Optional[str] = None) -> str:
    config = Fig2Config()
    if quick:
        config = dataclasses.replace(
            config, segment_slots=8_000, record_every=500, mb_min_samples=400,
            mb_freeze_slots=800,
        )
    result = run_fig2(
        _sweep_settings(config, n_seeds, batch, jobs, verify, diagnostics)
    )
    line = _verification_line(result.execution)
    return result.render() + ("\n" + line if line else "")


def _overhead(quick: bool, n_seeds: Optional[int] = None,
              batch: Optional[int] = None, jobs: Optional[int] = None) -> str:
    config = OverheadConfig()
    if quick:
        config = dataclasses.replace(
            config, queue_capacities=(4, 8), n_q_ops=2_000
        )
    if batch is not None:
        config = dataclasses.replace(config, batch_size=batch)
    return run_overhead(config).render()


def _variation(quick: bool, n_seeds: Optional[int] = None,
               batch: Optional[int] = None, jobs: Optional[int] = None,
               verify: Optional[float] = None,
               diagnostics: Optional[str] = None) -> str:
    config = VariationConfig()
    if quick:
        config = dataclasses.replace(
            config, n_slots=20_000, warmup_slots=15_000
        )
    result = run_variation(
        _sweep_settings(config, n_seeds, batch, jobs, verify, diagnostics)
    )
    line = _verification_line(result.execution)
    return result.render() + ("\n" + line if line else "")


def _policies(quick: bool, n_seeds: Optional[int] = None,
              batch: Optional[int] = None, jobs: Optional[int] = None) -> str:
    config = PolicyTableConfig()
    if quick:
        config = dataclasses.replace(config, duration=5_000.0)
    if jobs is not None:
        config = dataclasses.replace(config, n_jobs=jobs)
    return run_policy_table(config).render()


def _grid(quick: bool, n_seeds: Optional[int] = None,
          batch: Optional[int] = None, jobs: Optional[int] = None) -> str:
    config = GridConfig()
    if quick:
        config = dataclasses.replace(
            config, horizons=(5_000,), record_every=1_000
        )
    return run_grid(_sweep_settings(config, n_seeds, batch, jobs)).render()


def _sim_sweep(quick: bool, n_seeds: Optional[int] = None,
               batch: Optional[int] = None, jobs: Optional[int] = None,
               verify: Optional[float] = None,
               diagnostics: Optional[str] = None) -> str:
    config = SimSweepConfig()
    if quick:
        config = dataclasses.replace(config, duration=2_000.0, n_traces=4)
    if n_seeds is not None:
        config = dataclasses.replace(config, n_traces=n_seeds)
    if jobs is not None:
        config = dataclasses.replace(config, n_jobs=jobs)
    if verify is not None:
        config = dataclasses.replace(config, verify_fraction=verify)
    if diagnostics is not None:
        config = dataclasses.replace(config, diagnostics_dir=diagnostics)
    result = run_sim_sweep(config)
    out = result.render()
    line = _verification_line(getattr(result, "execution", None))
    return out + "\n" + line if line else out


def _fleet_sweep(quick: bool, n_seeds: Optional[int] = None,
                 batch: Optional[int] = None, jobs: Optional[int] = None,
                 devices: Optional[int] = None,
                 router: Optional[str] = None,
                 mtbf: Optional[float] = None,
                 mttr: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 brownout_severity: Optional[float] = None,
                 slo: Optional[float] = None,
                 breaker: Optional[int] = None,
                 retry_budget: Optional[float] = None,
                 checkpoint: Optional[str] = None,
                 verify: Optional[float] = None,
                 diagnostics: Optional[str] = None) -> str:
    config = FleetConfig()
    if quick:
        config = dataclasses.replace(config, duration=500.0, n_traces=4)
    if n_seeds is not None:
        config = dataclasses.replace(config, n_traces=n_seeds)
    if jobs is not None:
        config = dataclasses.replace(config, n_jobs=jobs)
    if devices is not None:
        config = dataclasses.replace(config, fleet_sizes=(devices,))
    if router is not None:
        config = dataclasses.replace(config, routers=(router,))
    if mtbf is not None:
        config = dataclasses.replace(config, mtbf=mtbf)
    if mttr is not None:
        config = dataclasses.replace(config, mttr=mttr)
    if max_retries is not None:
        config = dataclasses.replace(config, max_retries=max_retries)
    if brownout_severity is not None:
        config = dataclasses.replace(config, brownout_severity=brownout_severity)
    if slo is not None:
        config = dataclasses.replace(config, slo=slo)
    if breaker is not None:
        config = dataclasses.replace(config, breaker=breaker)
    if retry_budget is not None:
        config = dataclasses.replace(config, retry_budget=retry_budget)
    if checkpoint is not None:
        config = dataclasses.replace(config, checkpoint=checkpoint)
    if verify is not None:
        config = dataclasses.replace(config, verify_fraction=verify)
    if diagnostics is not None:
        config = dataclasses.replace(config, diagnostics_dir=diagnostics)
    result = run_fleet_sweep(config)
    out = result.render()
    line = _verification_line(getattr(result, "execution", None))
    return out + "\n" + line if line else out


_COMMANDS: Dict[str, Callable[..., str]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "grid": _grid,
    "overhead": _overhead,
    "variation": _variation,
    "policies": _policies,
    "sim-sweep": _sim_sweep,
    "fleet-sweep": _fleet_sweep,
}

#: experiments with a multi-seed (batched-engine) path
_SWEEPABLE = ("fig1", "fig2", "grid", "variation")
#: experiments that consume --seeds (batched-engine replicas, plus the
#: event-sim sweeps where N means trace replications per cell)
_SEEDABLE = _SWEEPABLE + ("sim-sweep", "fleet-sweep")
#: experiments that consume --batch (sweepable + the batched Q-op timing)
_BATCHABLE = _SWEEPABLE + ("overhead",)
#: experiments that consume --jobs (multiprocess-sharded work units)
_JOBBABLE = _SWEEPABLE + ("policies", "sim-sweep", "fleet-sweep")
#: experiments that consume --devices / --router (fleet dispatch grid)
_FLEETABLE = ("fleet-sweep",)
#: experiments with a sampled shadow-execution path (--verify/--diagnostics);
#: grid cells run through the executor directly and are excluded
_VERIFIABLE = ("fig1", "fig2", "variation", "sim-sweep", "fleet-sweep")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-qdpm",
        description="Reproduce the experiments of the Q-DPM paper (DATE 2005).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all", "sweep"],
        help="which experiment to run ('sweep' = multi-seed fig1/fig2/variation)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink horizons ~10x for a fast smoke run",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="run N independent seeds lock-step on the batched engine "
             "(for sim-sweep: N trace replications per cell)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="B",
        help="max replicas per lock-step batch (default 32)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="J",
        help="shard work units across J worker processes (default 1)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=None,
        metavar="N",
        help="fleet-sweep: replicate the device N times behind the "
             "dispatcher (replaces the default fleet-size axis)",
    )
    parser.add_argument(
        "--router",
        choices=sorted(ROUTERS),
        default=None,
        help="fleet-sweep: run a single routing policy "
             "(default: the full router axis)",
    )
    parser.add_argument(
        "--mtbf",
        type=float,
        default=None,
        metavar="S",
        help="fleet-sweep: inject seeded device failures with this mean "
             "time between failures (seconds; default: no faults)",
    )
    parser.add_argument(
        "--mttr",
        type=float,
        default=None,
        metavar="S",
        help="fleet-sweep: mean time to repair a failed device "
             "(seconds; requires --mtbf)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help="fleet-sweep: failover retries before a request routed to "
             "a down device is dropped (requires --mtbf)",
    )
    parser.add_argument(
        "--brownout-severity",
        type=float,
        default=None,
        metavar="M",
        help="fleet-sweep: make fault intervals brownouts — the device "
             "keeps serving but every request's service demand is "
             "multiplied by M >= 1 (requires --mtbf)",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="S",
        help="fleet-sweep: give each request the deadline arrival + S "
             "seconds; requests whose predicted completion misses it "
             "are shed on admission",
    )
    parser.add_argument(
        "--breaker",
        type=int,
        default=None,
        metavar="K",
        help="fleet-sweep: arm per-device circuit breakers that open "
             "after K consecutive observed failures (half-open reprobe "
             "after the recovery window)",
    )
    parser.add_argument(
        "--retry-budget",
        type=float,
        default=None,
        metavar="C",
        help="fleet-sweep: cap fleet-wide failover retries with a "
             "C-token bucket; exhaustion sheds the request instead of "
             "retry-storming",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="fleet-sweep: journal completed chunk results to PATH "
             "(a fresh run truncates an existing journal; see --resume)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="fleet-sweep: resume from the --checkpoint journal instead "
             "of starting over (results are bit-identical either way)",
    )
    parser.add_argument(
        "--verify",
        type=float,
        default=None,
        metavar="P",
        help="shadow-run fraction P of seed chunks / cells on the scalar "
             "reference path and compare field-for-field (0 <= P <= 1; "
             "any divergence aborts with a diagnostics bundle)",
    )
    parser.add_argument(
        "--diagnostics",
        default=None,
        metavar="DIR",
        help="write minimal-repro JSON bundles to DIR on invariant "
             "violations, shadow divergences, or worker failures",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record runtime spans (including from pool workers) and "
             "write a Chrome trace-event file on exit — open in Perfetto "
             "or chrome://tracing; a FILE ending in .jsonl gets the JSONL "
             "event stream instead.  Results are bit-identical to an "
             "untraced run",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the end-of-run telemetry metrics summary table "
             "(counters/gauges/histograms) to stderr",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="show live sweep progress (chunks done/total, throughput, "
             "ETA, workers) on stderr; degrades to plain periodic lines "
             "when stderr is not a TTY",
    )
    args = parser.parse_args(argv)
    if args.seeds is not None and args.seeds < 1:
        parser.error("--seeds must be >= 1")
    if args.batch is not None and args.batch < 1:
        parser.error("--batch must be >= 1")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.devices is not None and args.devices < 1:
        parser.error("--devices must be >= 1")
    if args.mtbf is not None and args.mtbf <= 0:
        parser.error("--mtbf must be > 0")
    if args.mttr is not None and args.mttr <= 0:
        parser.error("--mttr must be > 0")
    if args.max_retries is not None and args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.brownout_severity is not None and args.brownout_severity < 1.0:
        parser.error("--brownout-severity must be >= 1")
    if args.slo is not None and args.slo <= 0:
        parser.error("--slo must be > 0")
    if args.breaker is not None and args.breaker < 1:
        parser.error("--breaker must be >= 1")
    if args.retry_budget is not None and args.retry_budget < 0:
        parser.error("--retry-budget must be >= 0")
    for flag, value in (("--mttr", args.mttr),
                        ("--max-retries", args.max_retries),
                        ("--brownout-severity", args.brownout_severity)):
        if value is not None and args.mtbf is None:
            parser.error(f"{flag} requires --mtbf (no faults to configure)")
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.verify is not None and not 0.0 <= args.verify <= 1.0:
        parser.error("--verify must be in [0, 1]")

    telemetry_on = args.trace is not None or args.metrics or args.progress
    if telemetry_on:
        TELEMETRY.reset()
        if args.trace is not None:
            TELEMETRY.enable_tracing()
        if args.progress:
            TELEMETRY.enable_progress()
    try:
        return _run_experiments(args, parser)
    finally:
        if telemetry_on:
            _finish_telemetry(args)


def _finish_telemetry(args) -> None:
    """Flush the run's telemetry: summary table and/or trace file.

    Both go to stderr (the table itself and the confirmation line), so
    redirected stdout keeps carrying only the experiment output.  Runs
    in a ``finally`` — an interrupted sweep still exports whatever it
    recorded.
    """
    if args.metrics:
        print(TELEMETRY.root_metrics.render(), file=sys.stderr)
    if args.trace is not None:
        path = export_trace(args.trace)
        form = (
            "JSONL event stream" if str(path).endswith(".jsonl")
            else "Chrome trace-event; open in Perfetto or chrome://tracing"
        )
        print(f"trace written to {path} ({form})", file=sys.stderr)
    TELEMETRY.reset()


def _run_experiments(args, parser) -> int:
    """Dispatch the chosen experiment(s); returns the exit code."""
    if args.experiment == "sweep":
        n_seeds = args.seeds if args.seeds is not None else 8
        names = ("fig1", "fig2", "variation")
        for name in names:
            print(f"=== {name} (x{n_seeds} seeds) ===")
            try:
                print(_COMMANDS[name](
                    args.quick, n_seeds=n_seeds, batch=args.batch,
                    jobs=args.jobs, verify=args.verify,
                    diagnostics=args.diagnostics,
                ))
            except SweepInterrupted as exc:
                print(f"\n{name}: {exc.resume_hint()}", file=sys.stderr)
                return 130
            print()
        return 0

    if args.experiment != "all":
        if args.seeds is not None and args.experiment not in _SEEDABLE:
            parser.error(
                f"--seeds is not supported for {args.experiment!r} "
                f"(multi-seed experiments: {', '.join(sorted(_SEEDABLE))})"
            )
        if args.batch is not None and args.experiment not in _BATCHABLE:
            parser.error(
                f"--batch is not supported for {args.experiment!r} "
                f"(batched experiments: {', '.join(sorted(_BATCHABLE))})"
            )
        if args.jobs is not None and args.experiment not in _JOBBABLE:
            parser.error(
                f"--jobs is not supported for {args.experiment!r} "
                f"(sharded experiments: {', '.join(sorted(_JOBBABLE))})"
            )
        for flag, value in (("--devices", args.devices),
                            ("--router", args.router),
                            ("--mtbf", args.mtbf),
                            ("--mttr", args.mttr),
                            ("--max-retries", args.max_retries),
                            ("--brownout-severity", args.brownout_severity),
                            ("--slo", args.slo),
                            ("--breaker", args.breaker),
                            ("--retry-budget", args.retry_budget),
                            ("--checkpoint", args.checkpoint),
                            ("--resume", args.resume or None)):
            if value is not None and args.experiment not in _FLEETABLE:
                parser.error(
                    f"{flag} is not supported for {args.experiment!r} "
                    f"(fleet experiments: {', '.join(sorted(_FLEETABLE))})"
                )
        for flag, value in (("--verify", args.verify),
                            ("--diagnostics", args.diagnostics)):
            if value is not None and args.experiment not in _VERIFIABLE:
                parser.error(
                    f"{flag} is not supported for {args.experiment!r} "
                    f"(verifiable experiments: {', '.join(sorted(_VERIFIABLE))})"
                )

    if (args.checkpoint is not None and not args.resume
            and os.path.exists(args.checkpoint)):
        # fresh run: drop the stale journal so old chunk results are
        # not silently resumed
        os.remove(args.checkpoint)

    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        if name not in _SEEDABLE and args.seeds is not None:
            print(f"note: --seeds has no effect on {name!r}")
        if name not in _BATCHABLE and args.batch is not None:
            print(f"note: --batch has no effect on {name!r}")
        if name not in _JOBBABLE and args.jobs is not None:
            print(f"note: --jobs has no effect on {name!r}")
        if name not in _FLEETABLE and any(
            v is not None
            for v in (args.devices, args.router, args.mtbf, args.mttr,
                      args.max_retries, args.brownout_severity, args.slo,
                      args.breaker, args.retry_budget, args.checkpoint)
        ):
            print(f"note: fleet-sweep flags have no effect on {name!r}")
        if name not in _VERIFIABLE and (
            args.verify is not None or args.diagnostics is not None
        ):
            print(f"note: --verify/--diagnostics have no effect on {name!r}")
        kwargs = {}
        if args.seeds is not None and name in _SEEDABLE:
            kwargs["n_seeds"] = args.seeds
        if args.batch is not None and name in _BATCHABLE:
            kwargs["batch"] = args.batch
        if args.jobs is not None and name in _JOBBABLE:
            kwargs["jobs"] = args.jobs
        if name in _FLEETABLE:
            for key, value in (("devices", args.devices),
                               ("router", args.router),
                               ("mtbf", args.mtbf),
                               ("mttr", args.mttr),
                               ("max_retries", args.max_retries),
                               ("brownout_severity", args.brownout_severity),
                               ("slo", args.slo),
                               ("breaker", args.breaker),
                               ("retry_budget", args.retry_budget),
                               ("checkpoint", args.checkpoint)):
                if value is not None:
                    kwargs[key] = value
        if name in _VERIFIABLE:
            if args.verify is not None:
                kwargs["verify"] = args.verify
            if args.diagnostics is not None:
                kwargs["diagnostics"] = args.diagnostics
        # no flags -> exactly one positional arg (the dispatch contract)
        try:
            out = (_COMMANDS[name](args.quick, **kwargs) if kwargs
                   else _COMMANDS[name](args.quick))
        except SweepInterrupted as exc:
            print(f"\n{name}: {exc.resume_hint()}", file=sys.stderr)
            return 130
        print(out)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
